// Package slo evaluates declarative service-level rules over federated
// fleet metrics and live search dynamics. It is the accounting layer of
// the observability plane: telemetry.Merge produces one family set for
// the whole fleet, an Evaluator turns it into firing/pending/cleared
// alerts (/v1/fleet/alerts), and a Dynamics tracker reuses the
// tracestat anomaly detectors on streamed GenStats so co-evolutionary
// pathologies — stagnation, bloat, disengagement — surface while a run
// executes instead of in post-hoc trace analysis.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"carbon/internal/telemetry"
)

// Rule is one declarative SLO condition over a federated metric family.
//
// Text form (ParseRules, one rule per line):
//
//	<name> <metric> <agg> <op> <threshold> [for <duration>]
//
//	queue-wait-p90   carbond_span_queue_wait_ms   p90  > 500  for 2s
//	dead-jobs        carbond_serve_jobs_dead      sum  > 0
//	retry-rate       carbond_serve_retries        rate > 0.5  for 5s
//
// Agg picks how the family's series collapse to one number:
//
//   - value: the largest single series value — "worst worker" for
//     per-worker gauges.
//   - sum: series values summed (counter totals, dead-letter counts).
//   - rate: per-second increase of the summed value since the previous
//     evaluation (counters; the first evaluation never fires).
//   - p50/p90/p99: the largest per-series histogram quantile (a
//     summed fleet histogram has one series; per-worker histograms
//     alert on the worst worker).
//
// A rule with For > 0 must hold continuously that long before it
// fires — transient spikes stay pending and clear silently.
type Rule struct {
	Name      string        `json:"name"`
	Metric    string        `json:"metric"`
	Agg       string        `json:"agg"` // value | sum | rate | p50 | p90 | p99
	Op        string        `json:"op"`  // > | >= | < | <= | == | !=
	Threshold float64       `json:"threshold"`
	For       time.Duration `json:"for,omitempty"`
}

// State is an alert's position in its lifecycle.
type State string

const (
	// StatePending means the condition holds but not yet for the rule's
	// For window.
	StatePending State = "pending"
	// StateFiring means the condition has held for at least For.
	StateFiring State = "firing"
)

// Alert is one rule whose condition currently holds.
type Alert struct {
	Rule   string    `json:"rule"`
	Metric string    `json:"metric"`
	State  State     `json:"state"`
	Value  float64   `json:"value"`  // the aggregated observation
	Since  time.Time `json:"since"`  // when the condition started holding
	Detail string    `json:"detail"` // human-readable condition
}

// ParseRules reads the text rule syntax, one rule per line; blank lines
// and #-comments are skipped.
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	seen := map[string]bool{}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 5 && len(f) != 7 {
			return nil, fmt.Errorf("slo: line %d: want `name metric agg op threshold [for dur]`, got %q", i+1, line)
		}
		r := Rule{Name: f[0], Metric: f[1], Agg: f[2], Op: f[3]}
		v, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return nil, fmt.Errorf("slo: line %d: threshold %q: %w", i+1, f[4], err)
		}
		r.Threshold = v
		if len(f) == 7 {
			if f[5] != "for" {
				return nil, fmt.Errorf("slo: line %d: expected `for`, got %q", i+1, f[5])
			}
			d, err := time.ParseDuration(f[6])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("slo: line %d: duration %q: %v", i+1, f[6], err)
			}
			r.For = d
		}
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("slo: line %d: %w", i+1, err)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("slo: line %d: duplicate rule %q", i+1, r.Name)
		}
		seen[r.Name] = true
		rules = append(rules, r)
	}
	return rules, nil
}

func (r Rule) validate() error {
	switch r.Agg {
	case "value", "sum", "rate", "p50", "p90", "p99":
	default:
		return fmt.Errorf("unknown agg %q", r.Agg)
	}
	switch r.Op {
	case ">", ">=", "<", "<=", "==", "!=":
	default:
		return fmt.Errorf("unknown op %q", r.Op)
	}
	if r.Name == "" || r.Metric == "" {
		return fmt.Errorf("rule needs a name and a metric")
	}
	return nil
}

func (r Rule) compare(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Threshold
	case ">=":
		return v >= r.Threshold
	case "<":
		return v < r.Threshold
	case "<=":
		return v <= r.Threshold
	case "==":
		return v == r.Threshold
	default: // "!="
		return v != r.Threshold
	}
}

// Evaluator holds rules plus the cross-evaluation state they need
// (pending-since timestamps, previous counter values for rates). Not
// safe for concurrent use; the fleet router calls it from one probe
// loop.
type Evaluator struct {
	rules []Rule
	state map[string]*ruleState
}

type ruleState struct {
	since    time.Time // condition first held; zero when clear
	prevSum  float64   // last summed value (rate rules)
	prevTime time.Time // when prevSum was taken
	hasPrev  bool
}

// NewEvaluator builds an evaluator over the given rules.
func NewEvaluator(rules []Rule) *Evaluator {
	e := &Evaluator{rules: rules, state: make(map[string]*ruleState, len(rules))}
	for _, r := range rules {
		e.state[r.Name] = &ruleState{}
	}
	return e
}

// Rules returns the evaluator's rule set.
func (e *Evaluator) Rules() []Rule { return append([]Rule(nil), e.rules...) }

// Evaluate applies every rule to one federated family snapshot taken at
// `now` and returns the alerts whose conditions hold, sorted by rule
// name. Conditions that stopped holding clear their pending state — an
// alert that fired on the previous evaluation and is absent from this
// one has cleared.
func (e *Evaluator) Evaluate(fams []telemetry.Family, now time.Time) []Alert {
	var out []Alert
	for _, r := range e.rules {
		st := e.state[r.Name]
		obs, ok := e.observe(r, st, fams, now)
		if !ok || !r.compare(obs) {
			st.since = time.Time{}
			continue
		}
		if st.since.IsZero() {
			st.since = now
		}
		a := Alert{
			Rule:   r.Name,
			Metric: r.Metric,
			State:  StatePending,
			Value:  obs,
			Since:  st.since,
			Detail: fmt.Sprintf("%s(%s) = %g %s %g", r.Agg, r.Metric, obs, r.Op, r.Threshold),
		}
		if now.Sub(st.since) >= r.For {
			a.State = StateFiring
		}
		out = append(out, a)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Rule < out[b].Rule })
	return out
}

// observe collapses the rule's metric family to one number; ok=false
// when the family is absent or carries nothing usable (absent metrics
// never fire — an SLO on a metric no worker exports is a config
// mistake, not an outage).
func (e *Evaluator) observe(r Rule, st *ruleState, fams []telemetry.Family, now time.Time) (float64, bool) {
	fam := telemetry.FindFamily(fams, r.Metric)
	if fam == nil || len(fam.Series) == 0 {
		return 0, false
	}
	switch r.Agg {
	case "value":
		best, ok := 0.0, false
		for _, s := range fam.Series {
			if !ok || s.Value > best {
				best, ok = s.Value, true
			}
		}
		return best, ok
	case "sum":
		var sum float64
		for _, s := range fam.Series {
			sum += s.Value
		}
		return sum, true
	case "rate":
		var sum float64
		for _, s := range fam.Series {
			sum += s.Value
		}
		defer func() { st.prevSum, st.prevTime, st.hasPrev = sum, now, true }()
		if !st.hasPrev {
			return 0, false
		}
		dt := now.Sub(st.prevTime).Seconds()
		if dt <= 0 {
			return 0, false
		}
		return (sum - st.prevSum) / dt, true
	default: // p50 | p90 | p99
		q := map[string]float64{"p50": 0.5, "p90": 0.9, "p99": 0.99}[r.Agg]
		best, ok := 0.0, false
		for _, s := range fam.Series {
			if v, qok := telemetry.HistogramQuantile(s, q); qok && (!ok || v > best) {
				best, ok = v, true
			}
		}
		return best, ok
	}
}

// AlertFamilies renders the current alert set as metric families, so
// firing rules federate out on /metrics/prometheus like any other
// series: carbonfleet_alert{rule=...} is 1 while firing (0.5 pending)
// and carbonfleet_alerts_firing counts them.
func AlertFamilies(alerts []Alert) []telemetry.Family {
	perRule := telemetry.Family{
		Name: "carbonfleet_alert",
		Help: "CARBON SLO alert state per rule (1 firing, 0.5 pending).",
		Kind: "gauge",
	}
	var firing int
	for _, a := range alerts {
		v := 0.5
		if a.State == StateFiring {
			v = 1
			firing++
		}
		perRule.Series = append(perRule.Series, telemetry.Series{
			Labels: map[string]string{"rule": a.Rule},
			Value:  v,
		})
	}
	total := telemetry.Family{
		Name:   "carbonfleet_alerts_firing",
		Help:   "CARBON count of firing SLO alerts.",
		Kind:   "gauge",
		Series: []telemetry.Series{{Value: float64(firing)}},
	}
	return []telemetry.Family{perRule, total}
}
