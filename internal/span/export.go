package span

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"carbon/internal/telemetry"
)

// FileExporter appends span records to a JSONL file, one fsync-free
// write per record (a span line is noise next to the work it measures;
// the O_APPEND write is atomic enough that concurrent enders never
// interleave bytes). The file is opened lazily on the first export and
// created if absent, so constructing the exporter is free for jobs
// that never run. Export never fails the caller: tracing is
// observability, and a full disk must not kill a job — the first error
// is remembered and surfaced by Close. Swallowed does not mean silent:
// every dropped record bumps the drop counter (SetDropCounter, the
// span.dropped_writes metric) and the first failure per file is logged,
// so a full disk shows up in /metrics instead of only at job end.
type FileExporter struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	buf     []byte
	err     error
	drops   *telemetry.Counter
	logged  bool         // first-failure log emitted for this file
	dropped int64        // records lost to write/open/marshal errors
	fault   func() error // test hook: injected write error
}

// NewFileExporter exports to path (append mode, created on first use).
func NewFileExporter(path string) *FileExporter {
	return &FileExporter{path: path}
}

// Path returns the exporter's target file.
func (e *FileExporter) Path() string { return e.path }

// SetDropCounter routes dropped-write counts into a telemetry counter
// (conventionally "span.dropped_writes"). Nil-safe on both sides.
func (e *FileExporter) SetDropCounter(c *telemetry.Counter) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.drops = c
	e.mu.Unlock()
}

// SetFault injects a write error before each record — the fault hook
// the dropped-writes tests use. A nil fn clears it.
func (e *FileExporter) SetFault(fn func() error) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.fault = fn
	e.mu.Unlock()
}

// Dropped reports how many records this exporter has lost so far.
func (e *FileExporter) Dropped() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// drop records one lost record under e.mu: counter bump plus a
// once-per-file log line naming the first error.
func (e *FileExporter) drop(err error) {
	e.dropped++
	e.drops.Add(1)
	if e.err == nil {
		e.err = err
	}
	if !e.logged {
		e.logged = true
		log.Printf("span: dropping writes to %s: %v", e.path, err)
	}
}

// Export appends one record. Errors are swallowed (first one kept for
// Close) but counted and logged once per file; a nil exporter ignores
// the record.
func (e *FileExporter) Export(r Record) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fault != nil {
		if err := e.fault(); err != nil {
			e.drop(err)
			return
		}
	}
	if e.f == nil {
		if e.err != nil {
			e.dropped++
			e.drops.Add(1)
			return // opening failed before; stay quiet
		}
		f, err := os.OpenFile(e.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			e.drop(err)
			return
		}
		e.f = f
	}
	b, err := json.Marshal(r)
	if err != nil {
		e.drop(err)
		return
	}
	e.buf = append(append(e.buf[:0], b...), '\n')
	if _, err := e.f.Write(e.buf); err != nil {
		e.drop(err)
	}
}

// Close closes the file and returns the first error Export swallowed.
func (e *FileExporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f != nil {
		if cerr := e.f.Close(); cerr != nil && e.err == nil {
			e.err = cerr
		}
		e.f = nil
	}
	return e.err
}

// WriterExporter streams records to an io.Writer as JSONL — the
// exporter tests and benchmarks use (io.Discard, bytes.Buffer).
type WriterExporter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewWriterExporter wraps w; a nil writer yields a nil exporter.
func NewWriterExporter(w io.Writer) *WriterExporter {
	if w == nil {
		return nil
	}
	return &WriterExporter{enc: json.NewEncoder(w)}
}

// Export writes one record as a JSON line.
func (e *WriterExporter) Export(r Record) {
	if e == nil {
		return
	}
	e.mu.Lock()
	_ = e.enc.Encode(r)
	e.mu.Unlock()
}

// Collector accumulates records in memory for tests and analyzers.
type Collector struct {
	mu   sync.Mutex
	recs []Record
}

// Export appends the record.
func (c *Collector) Export(r Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

// Records returns a copy of everything exported so far.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.recs...)
}

// HistExporter feeds ended spans into per-name duration histograms of a
// telemetry.Registry ("<prefix>.<name>_ms", exponential millisecond
// buckets), which WritePrometheus then renders as one Prometheus
// histogram per span kind. Announce records (EndNS 0) are skipped —
// they carry no duration yet.
type HistExporter struct {
	reg    *telemetry.Registry
	prefix string
}

// NewHistExporter builds the exporter; a nil registry yields nil.
func NewHistExporter(reg *telemetry.Registry, prefix string) *HistExporter {
	if reg == nil {
		return nil
	}
	return &HistExporter{reg: reg, prefix: prefix}
}

// histBuckets spans 0.05ms..~1.6s exponentially — LP solves sit at the
// bottom, backoff sleeps and long generations at the top.
var histBuckets = telemetry.ExpBuckets(0.05, 2, 16)

// Export observes the span's duration in milliseconds.
func (e *HistExporter) Export(r Record) {
	if e == nil || r.EndNS == 0 {
		return
	}
	name := e.prefix + "." + sanitizeName(r.Name) + "_ms"
	e.reg.Histogram(name, histBuckets...).Observe(float64(r.EndNS-r.StartNS) / float64(time.Millisecond))
}

func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "span"
	}
	return b.String()
}

// multi fans one record out to several exporters.
type multi []Exporter

func (m multi) Export(r Record) {
	for _, e := range m {
		e.Export(r)
	}
}

// Multi combines exporters, dropping nils (both nil interfaces and
// typed-nil *FileExporter/*HistExporter values). It returns nil when
// nothing remains — so span.New(Multi(...)) turns tracing off cleanly.
func Multi(exps ...Exporter) Exporter {
	var out multi
	for _, e := range exps {
		switch v := e.(type) {
		case nil:
		case *FileExporter:
			if v != nil {
				out = append(out, v)
			}
		case *WriterExporter:
			if v != nil {
				out = append(out, v)
			}
		case *HistExporter:
			if v != nil {
				out = append(out, v)
			}
		default:
			out = append(out, e)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// ReadRecords parses a span JSONL stream strictly, validating the
// schema stamp on every line.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	err := telemetry.DecodeLines(r, func(raw json.RawMessage) error {
		rec, err := decodeRecord(raw)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadRecordsLenient is ReadRecords tolerating a torn final line — the
// signature a SIGKILLed exporter leaves. It reports whether such a
// tail was dropped.
func ReadRecordsLenient(r io.Reader) (recs []Record, truncated bool, err error) {
	truncated, err = telemetry.DecodeLinesLenient(r, func(raw json.RawMessage) error {
		rec, derr := decodeRecord(raw)
		if derr != nil {
			return derr
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return recs, truncated, nil
}

// ReadFile loads one span file leniently.
func ReadFile(path string) (recs []Record, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	recs, truncated, err = ReadRecordsLenient(f)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	return recs, truncated, nil
}

func decodeRecord(raw json.RawMessage) (Record, error) {
	var rec Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return rec, err
	}
	switch {
	case rec.Schema != Schema:
		return rec, fmt.Errorf("span: unknown schema %q (want %q)", rec.Schema, Schema)
	case rec.Trace == "" || rec.Span == "":
		return rec, fmt.Errorf("span: record %q missing identity", rec.Name)
	case rec.Name == "":
		return rec, fmt.Errorf("span: record %s/%s missing name", rec.Trace, rec.Span)
	case rec.StartNS <= 0:
		return rec, fmt.Errorf("span: record %q has no start", rec.Name)
	case rec.EndNS != 0 && rec.EndNS < rec.StartNS:
		return rec, fmt.Errorf("span: record %q ends before it starts", rec.Name)
	}
	return rec, nil
}
