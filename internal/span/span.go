// Package span is the repository's distributed-tracing primitive: a
// lightweight span tracer that attributes wall time across the job
// pipeline — HTTP submit → queue wait → attempt → generation → LP
// solve — and serializes it as one JSON line per span (schema
// carbon.spans/v1), the same durable-JSONL discipline as the
// carbon.trace run logs.
//
// Design rules, mirroring internal/telemetry:
//
//   - Hot paths pay nothing when tracing is off. New(nil) returns a nil
//     *Tracer, a nil *Tracer starts nil *Spans, and every *Span method
//     no-ops on nil — instrumented code keeps one pointer and calls it
//     unconditionally.
//   - Span identity is generated from a private splitmix64 stream seeded
//     off the clock and pid, never from the algorithm's rng package —
//     tracing consumes zero RNG, so a run is bit-identical with spans on
//     or off (the determinism contract of internal/core is unaffected).
//   - Context crosses process boundaries as a W3C traceparent string
//     ("00-<32 hex trace>-<16 hex span>-01"), so an HTTP client, carbond
//     and a future multi-node router can all join one trace.
//   - Long-lived spans Announce() a start record (end_ns=0) before doing
//     the work; a SIGKILL then leaves an "open" span in the file instead
//     of nothing, and the analyzer (internal/tracestat) stitches the
//     retry's spans into the same trace after restart.
package span

import (
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Schema stamps every record so readers can reject foreign files.
const Schema = "carbon.spans/v1"

// Span kinds used across the pipeline. Free-form strings are allowed;
// these four are what the critical-path breakdown groups by.
const (
	KindQueue   = "queue"   // waiting for a worker slot
	KindCompute = "compute" // evaluation / solver work
	KindIO      = "io"      // spool, checkpoint and result writes
	KindBackoff = "backoff" // retry backoff sleeps
)

// TraceID identifies one end-to-end trace (one job, across restarts).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// Context is the propagated half of a span: enough to parent further
// spans onto it, in this process or another.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a usable identity.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// TraceParent renders the context in W3C traceparent form,
// version 00 with the sampled flag set: "00-<trace>-<span>-01".
// An invalid context renders as "".
func (c Context) TraceParent() string {
	if !c.Valid() {
		return ""
	}
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceParent decodes a W3C traceparent header. Only version 00 is
// accepted; the trailing flags byte is validated as hex but otherwise
// ignored (we treat every propagated trace as sampled).
func ParseTraceParent(s string) (Context, error) {
	var c Context
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return c, fmt.Errorf("span: malformed traceparent %q", s)
	}
	if _, err := hex.Decode(c.Trace[:], []byte(s[3:35])); err != nil {
		return c, fmt.Errorf("span: bad trace id in %q: %w", s, err)
	}
	if _, err := hex.Decode(c.Span[:], []byte(s[36:52])); err != nil {
		return c, fmt.Errorf("span: bad span id in %q: %w", s, err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return c, fmt.Errorf("span: bad flags in %q: %w", s, err)
	}
	if !c.Valid() {
		return Context{}, fmt.Errorf("span: all-zero ids in %q", s)
	}
	return c, nil
}

// Record is one span serialized for the JSONL file. An announced span
// appears once with EndNS 0 (still running when written) and, if it
// completed cleanly, again with the full picture; readers keep the
// ended copy (see internal/tracestat).
type Record struct {
	Schema  string         `json:"schema"`
	Trace   string         `json:"trace"`
	Span    string         `json:"span"`
	Parent  string         `json:"parent,omitempty"`
	Remote  bool           `json:"remote,omitempty"` // parent span lives in another process's file
	Name    string         `json:"name"`
	Kind    string         `json:"kind,omitempty"`
	StartNS int64          `json:"start_ns"`
	EndNS   int64          `json:"end_ns,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Duration is EndNS−StartNS for an ended record, 0 for an open one.
func (r Record) Duration() time.Duration {
	if r.EndNS == 0 {
		return 0
	}
	return time.Duration(r.EndNS - r.StartNS)
}

// Exporter receives finished (and announced) span records. Exporters
// must be safe for concurrent use — engine waves end spans from several
// worker goroutines.
type Exporter interface {
	Export(Record)
}

// Tracer mints span identities and hands finished spans to its
// exporter. A nil *Tracer is the "tracing off" tracer: it starts nil
// spans, whose methods all no-op — the disabled cost is one nil check.
type Tracer struct {
	exp Exporter
	// anchor is the single wall+monotonic reading every timestamp this
	// tracer emits derives from (anchor wall + monotonic elapsed). With
	// per-span wall readings, an NTP slew between a parent's Start and
	// a child's Start can put the child's computed end past the
	// parent's even though the parent ended later — which shows up in
	// the analyzer as a child spilling out of its parent and breaks the
	// Covered ≤ Wall attribution invariant. One shared anchor gives the
	// whole process one consistent monotonic timeline.
	anchor time.Time
	state  atomic.Uint64 // private splitmix64 stream; never the algorithm RNG
}

// now is the tracer's clock: the anchor's wall time plus the monotonic
// time elapsed since the anchor was captured.
func (t *Tracer) now() time.Time {
	return t.anchor.Add(time.Since(t.anchor))
}

// New returns a tracer exporting to exp, or nil when exp is nil —
// callers thread the returned pointer through unconditionally and
// tracing is simply off.
func New(exp Exporter) *Tracer {
	if exp == nil {
		return nil
	}
	t := &Tracer{exp: exp, anchor: time.Now()}
	seed := uint64(t.anchor.UnixNano()) ^ uint64(os.Getpid())<<40 ^ 0x9E3779B97F4A7C15
	t.state.Store(seed)
	return t
}

// nextID draws the next 64-bit identity from the tracer's splitmix64
// stream. The atomic add makes concurrent Start calls collision-free.
func (t *Tracer) nextID() uint64 {
	x := t.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putU64(id[:], t.nextID())
	}
	return id
}

func putU64(b []byte, x uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (56 - 8*i))
	}
}

// Start begins a span. A valid parent context places the span in the
// parent's trace; an invalid (zero) one starts a fresh trace with this
// span as its root. A nil tracer returns a nil (no-op) span.
func (t *Tracer) Start(parent Context, name string) *Span {
	return t.start(parent, name, false)
}

// StartRemote is Start for a parent that lives in another process's
// span file (e.g. the HTTP client's traceparent): the link is recorded
// but the analyzer will not flag the missing parent as an orphan.
func (t *Tracer) StartRemote(parent Context, name string) *Span {
	return t.start(parent, name, true)
}

func (t *Tracer) start(parent Context, name string, remote bool) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: t.now()}
	if parent.Valid() {
		s.ctx.Trace = parent.Trace
		s.parent = parent.Span
		s.remote = remote
	} else {
		putU64(s.ctx.Trace[:8], t.nextID())
		putU64(s.ctx.Trace[8:], t.nextID())
	}
	s.ctx.Span = t.newSpanID()
	return s
}

// Span is one timed operation. All methods are nil-safe and, except for
// the chaining setters, safe for concurrent use with each other.
type Span struct {
	tr     *Tracer
	ctx    Context
	parent SpanID
	remote bool
	name   string
	start  time.Time

	mu    sync.Mutex
	kind  string
	attrs map[string]any
	ended bool
}

// Context returns the span's propagable identity (zero for a nil span).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// Kind tags the span's critical-path category (KindQueue, KindCompute,
// KindIO, KindBackoff). Returns s for chaining.
func (s *Span) Kind(k string) *Span {
	if s != nil {
		s.mu.Lock()
		s.kind = k
		s.mu.Unlock()
	}
	return s
}

// Attr attaches one key/value attribute. Returns s for chaining.
func (s *Span) Attr(key string, value any) *Span {
	if s != nil {
		s.mu.Lock()
		if s.attrs == nil {
			s.attrs = make(map[string]any, 4)
		}
		s.attrs[key] = value
		s.mu.Unlock()
	}
	return s
}

// Announce exports a start record (EndNS 0) immediately, so a process
// killed mid-span leaves evidence of the span in the file. End later
// exports the completed record; readers prefer the ended copy. Returns
// s for chaining.
func (s *Span) Announce() *Span {
	if s != nil {
		s.tr.exp.Export(s.record(0))
	}
	return s
}

// End exports the completed span. Idempotent: only the first End emits.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	done := s.ended
	s.ended = true
	s.mu.Unlock()
	if done {
		return
	}
	// The tracer's anchored clock keeps durations monotonic even if the
	// wall clock stepped while the span was open, and keeps every
	// span's end on the same timeline as its parent's.
	s.tr.exp.Export(s.record(s.tr.now().UnixNano()))
}

func (s *Span) record(endNS int64) Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Record{
		Schema:  Schema,
		Trace:   s.ctx.Trace.String(),
		Span:    s.ctx.Span.String(),
		Name:    s.name,
		Kind:    s.kind,
		Remote:  s.remote,
		StartNS: s.start.UnixNano(),
		EndNS:   endNS,
	}
	if !s.parent.IsZero() {
		r.Parent = s.parent.String()
	}
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			r.Attrs[k] = v
		}
	}
	return r
}
