package span

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"carbon/internal/par"
	"carbon/internal/telemetry"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start(Context{}, "anything")
	if s != nil {
		t.Fatalf("nil tracer started a non-nil span")
	}
	// Every method must be a no-op on nil, not a panic.
	s.Kind(KindCompute).Attr("k", 1).Announce().End()
	s.End() // idempotent on nil too
	if ctx := s.Context(); ctx.Valid() {
		t.Fatalf("nil span has a valid context: %v", ctx)
	}
	if New(nil) != nil {
		t.Fatalf("New(nil) should return a nil tracer")
	}
	if Multi(nil, (*FileExporter)(nil), (*HistExporter)(nil)) != nil {
		t.Fatalf("Multi of nils should collapse to nil")
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	var c Collector
	tr := New(&c)
	root := tr.Start(Context{}, "root")
	tp := root.Context().TraceParent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("bad traceparent %q", tp)
	}
	got, err := ParseTraceParent(tp)
	if err != nil {
		t.Fatalf("ParseTraceParent(%q): %v", tp, err)
	}
	if got != root.Context() {
		t.Fatalf("round trip mismatch: %v != %v", got, root.Context())
	}

	for _, bad := range []string{
		"",
		"00-short-1234-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // unsupported version
		"00-0af7651916cd43dd8448eb211c80319c+b7ad6b7169203331-01", // bad separator
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // non-hex trace
		"00-0af7651916cd43dd8448eb211c80319c-zzad6b7169203331-01", // non-hex span
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", // non-hex flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
	} {
		if _, err := ParseTraceParent(bad); err == nil {
			t.Errorf("ParseTraceParent(%q) accepted garbage", bad)
		}
	}
}

func TestSpanLifecycleAndLinkage(t *testing.T) {
	var c Collector
	tr := New(&c)
	root := tr.Start(Context{}, "submit").Kind(KindIO).Attr("job", "j000001")
	child := tr.Start(root.Context(), "attempt").Kind(KindCompute).Attr("attempt", 1)
	remote := tr.StartRemote(Context{Trace: root.Context().Trace, Span: SpanID{9}}, "linked")
	child.End()
	child.End() // idempotent: must not export twice
	root.End()
	remote.End()

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (double End must not re-export): %+v", len(recs), recs)
	}
	byName := map[string]Record{}
	for _, r := range recs {
		if r.Schema != Schema {
			t.Fatalf("record %q stamped %q", r.Name, r.Schema)
		}
		byName[r.Name] = r
	}
	rr, cr, lr := byName["submit"], byName["attempt"], byName["linked"]
	if rr.Parent != "" {
		t.Fatalf("root has parent %q", rr.Parent)
	}
	if cr.Trace != rr.Trace || cr.Parent != rr.Span {
		t.Fatalf("child not linked: child %+v root %+v", cr, rr)
	}
	if cr.Remote || rr.Remote {
		t.Fatalf("local spans marked remote")
	}
	if !lr.Remote || lr.Parent == "" {
		t.Fatalf("StartRemote span not marked remote: %+v", lr)
	}
	if cr.Attrs["attempt"] != float64(1) && cr.Attrs["attempt"] != 1 {
		// Collector keeps live values (int); file round-trips decode to float64.
		t.Fatalf("attr lost: %+v", cr.Attrs)
	}
	if cr.EndNS < cr.StartNS || cr.StartNS <= 0 {
		t.Fatalf("bad timestamps: %+v", cr)
	}
}

func TestAnnounceEmitsOpenRecord(t *testing.T) {
	var c Collector
	tr := New(&c)
	s := tr.Start(Context{}, "queue.wait").Kind(KindQueue).Announce()
	open := c.Records()
	if len(open) != 1 || open[0].EndNS != 0 {
		t.Fatalf("announce should export exactly one open record, got %+v", open)
	}
	s.End()
	recs := c.Records()
	if len(recs) != 2 || recs[1].EndNS == 0 {
		t.Fatalf("end after announce should add the ended copy, got %+v", recs)
	}
	if recs[0].Span != recs[1].Span || recs[0].StartNS != recs[1].StartNS {
		t.Fatalf("announce/end identity mismatch: %+v", recs)
	}
}

// TestParentChildAcrossWorkers exercises the engine's usage pattern:
// one parent span per wave, child spans started and ended concurrently
// from par.ForEach workers. Run under -race this is the span-lifecycle
// concurrency gate.
func TestParentChildAcrossWorkers(t *testing.T) {
	var c Collector
	tr := New(&c)
	const waves, items = 4, 64
	for w := 0; w < waves; w++ {
		parent := tr.Start(Context{}, "wave").Attr("wave", w)
		par.ForEach(items, 8, func(i int) {
			tr.Start(parent.Context(), "item").Kind(KindCompute).Attr("i", i).End()
		})
		parent.End()
	}
	recs := c.Records()
	if len(recs) != waves*(items+1) {
		t.Fatalf("got %d records, want %d", len(recs), waves*(items+1))
	}
	parents := map[string]string{} // span id -> trace
	for _, r := range recs {
		if r.Name == "wave" {
			parents[r.Span] = r.Trace
		}
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Name != "item" {
			continue
		}
		if seen[r.Span] {
			t.Fatalf("duplicate span id %s across concurrent starts", r.Span)
		}
		seen[r.Span] = true
		trace, ok := parents[r.Parent]
		if !ok {
			t.Fatalf("item %s has unknown parent %s", r.Span, r.Parent)
		}
		if trace != r.Trace {
			t.Fatalf("item %s in trace %s but parent's trace is %s", r.Span, r.Trace, trace)
		}
	}
	if len(seen) != waves*items {
		t.Fatalf("got %d distinct items, want %d", len(seen), waves*items)
	}
}

func TestFileExporterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j000001.spans.jsonl")
	exp := NewFileExporter(path)
	tr := New(exp)
	root := tr.Start(Context{}, "submit").Kind(KindIO).Announce()
	tr.Start(root.Context(), "attempt").Attr("attempt", 1).End()
	root.End()
	if err := exp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recs, truncated, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if truncated {
		t.Fatalf("clean file reported truncated")
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[1].Attrs["attempt"] != float64(1) {
		t.Fatalf("attrs did not survive the file: %+v", recs[1].Attrs)
	}

	// Appending after reopen (the restart path) must extend the same file.
	exp2 := NewFileExporter(path)
	New(exp2).StartRemote(root.Context(), "attempt").Attr("attempt", 2).End()
	if err := exp2.Close(); err != nil {
		t.Fatalf("close after reopen: %v", err)
	}
	recs, _, err = ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile after append: %v", err)
	}
	if len(recs) != 4 || recs[3].Trace != recs[0].Trace {
		t.Fatalf("restart append broke the trace: %+v", recs)
	}
}

func TestReadRecordsLenientTornTail(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewWriterExporter(&buf))
	tr.Start(Context{}, "a").End()
	tr.Start(Context{}, "b").End()
	whole := buf.String()
	cut := whole[:len(whole)-10] // SIGKILL mid-line

	recs, truncated, err := ReadRecordsLenient(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("lenient read of torn tail: %v", err)
	}
	if !truncated || len(recs) != 1 {
		t.Fatalf("want 1 record + truncated, got %d truncated=%v", len(recs), truncated)
	}
	if _, err := ReadRecords(strings.NewReader(cut)); err == nil {
		t.Fatalf("strict read should reject a torn tail")
	}
	// Wrong schema is corruption, not truncation — lenient must reject it.
	bad := strings.Replace(whole, Schema, "carbon.trace/v2", 1)
	if _, _, err := ReadRecordsLenient(strings.NewReader(bad)); err == nil {
		t.Fatalf("lenient read accepted a foreign schema")
	}
}

func TestFileExporterSwallowsErrors(t *testing.T) {
	dir := t.TempDir()
	exp := NewFileExporter(filepath.Join(dir, "missing", "x.jsonl")) // parent dir absent
	New(exp).Start(Context{}, "a").End()                             // must not panic or block
	if err := exp.Close(); err == nil {
		t.Fatalf("Close should surface the swallowed open error")
	}
	if _, err := os.Stat(filepath.Join(dir, "missing")); !os.IsNotExist(err) {
		t.Fatalf("exporter should not create directories")
	}
}

func TestHistExporter(t *testing.T) {
	reg := telemetry.NewRegistry()
	exp := NewHistExporter(reg, "span")
	exp.Export(Record{Schema: Schema, Name: "lp.solve", StartNS: 1000, EndNS: 1000 + int64(2*time.Millisecond)})
	exp.Export(Record{Schema: Schema, Name: "lp.solve", StartNS: 1000}) // open: skipped
	exp.Export(Record{Schema: Schema, Name: "gen", StartNS: 1000, EndNS: 1000 + int64(8*time.Millisecond)})

	snap := reg.Snapshot()
	hs, ok := snap["span.lp_solve_ms"].(telemetry.HistSnapshot)
	if !ok {
		t.Fatalf("no lp_solve histogram in %v", snap)
	}
	if hs.Count != 1 || hs.Sum < 1.9 || hs.Sum > 2.1 {
		t.Fatalf("lp_solve histogram wrong: %+v", hs)
	}
	if _, ok := snap["span.gen_ms"].(telemetry.HistSnapshot); !ok {
		t.Fatalf("no gen histogram in %v", snap)
	}
	if NewHistExporter(nil, "span") != nil {
		t.Fatalf("nil registry should yield nil exporter")
	}
}

func TestTracerIDsUnique(t *testing.T) {
	var c Collector
	tr := New(&c)
	seen := map[string]bool{}
	par.ForEach(512, 8, func(int) {
		tr.Start(Context{}, "x").End()
	})
	for _, r := range c.Records() {
		if seen[r.Span] {
			t.Fatalf("span id %s minted twice", r.Span)
		}
		seen[r.Span] = true
	}
}

// Every timestamp a tracer emits derives from one wall+monotonic
// anchor, so ends recorded later always compare later — a child ended
// before its parent can never spill past the parent's recorded end,
// whatever the wall clock does while the spans are open. (Per-span
// wall anchors made this probabilistic under NTP slew, which the
// trace analyzer saw as Covered > Wall.)
func TestTimestampsShareOneMonotonicTimeline(t *testing.T) {
	var c Collector
	tr := New(&c)
	for i := 0; i < 1000; i++ {
		parent := tr.Start(Context{}, "parent")
		child := tr.Start(parent.Context(), "child")
		child.End()
		parent.End()
	}
	recs := c.Records()
	if len(recs) != 2000 {
		t.Fatalf("got %d records, want 2000", len(recs))
	}
	for i := 0; i+1 < len(recs); i += 2 {
		child, parent := recs[i], recs[i+1]
		if child.StartNS < parent.StartNS {
			t.Fatalf("iter %d: child starts %dns before its parent", i/2, parent.StartNS-child.StartNS)
		}
		if child.EndNS > parent.EndNS {
			t.Fatalf("iter %d: child end %d spills past parent end %d", i/2, child.EndNS, parent.EndNS)
		}
	}
}
