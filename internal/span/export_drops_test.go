package span

import (
	"errors"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carbon/internal/telemetry"
)

// TestFileExporterCountsDroppedWrites pins the satellite contract:
// write failures are swallowed (the job survives) but every lost record
// bumps span.dropped_writes and the first failure per file is logged
// exactly once.
func TestFileExporterCountsDroppedWrites(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	exp := NewFileExporter(filepath.Join(dir, "x.jsonl"))
	exp.SetDropCounter(reg.Counter("span.dropped_writes"))

	var logBuf strings.Builder
	prev := log.Writer()
	log.SetOutput(&logBuf)
	defer log.SetOutput(prev)

	tr := New(exp)
	tr.Start(Context{}, "ok").End() // healthy write first

	// Inject a disk-full style fault for the next two records.
	diskFull := errors.New("no space left on device")
	exp.SetFault(func() error { return diskFull })
	tr.Start(Context{}, "lost1").End()
	tr.Start(Context{}, "lost2").End()
	exp.SetFault(nil)
	tr.Start(Context{}, "ok2").End() // recovers once the fault clears

	if got := exp.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	if got := reg.Counter("span.dropped_writes").Load(); got != 2 {
		t.Fatalf("span.dropped_writes = %d, want 2", got)
	}
	if n := strings.Count(logBuf.String(), "dropping writes"); n != 1 {
		t.Fatalf("first-failure log emitted %d times, want once: %q", n, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "no space left on device") {
		t.Fatalf("log does not name the error: %q", logBuf.String())
	}

	if err := exp.Close(); err == nil || !errors.Is(err, diskFull) {
		t.Fatalf("Close() = %v, want the first swallowed error", err)
	}
	// The healthy records made it to disk; the faulted ones did not.
	recs, truncated, err := ReadFile(exp.Path())
	if err != nil || truncated {
		t.Fatalf("ReadFile: %v truncated=%v", err, truncated)
	}
	var names []string
	for _, r := range recs {
		names = append(names, r.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "ok") || strings.Contains(joined, "lost") {
		t.Fatalf("file contents %v", names)
	}
}

// TestFileExporterOpenFailureCounts covers the open-error path: when
// the parent directory is missing every record drops, counted, with
// one log line total.
func TestFileExporterOpenFailureCounts(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	exp := NewFileExporter(filepath.Join(dir, "missing", "x.jsonl"))
	exp.SetDropCounter(reg.Counter("span.dropped_writes"))

	prev := log.Writer()
	log.SetOutput(io.Discard)
	defer log.SetOutput(prev)

	tr := New(exp)
	for i := 0; i < 3; i++ {
		tr.Start(Context{}, "doomed").End()
	}
	if got := reg.Counter("span.dropped_writes").Load(); got != 3 {
		t.Fatalf("span.dropped_writes = %d, want 3", got)
	}
	if err := exp.Close(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Close() = %v, want not-exist", err)
	}
}

// TestFileExporterNilCounterSafe: an exporter without a wired counter
// still counts locally and never panics.
func TestFileExporterNilCounterSafe(t *testing.T) {
	prev := log.Writer()
	log.SetOutput(io.Discard)
	defer log.SetOutput(prev)

	exp := NewFileExporter(filepath.Join(t.TempDir(), "x.jsonl"))
	exp.SetFault(func() error { return errors.New("boom") })
	New(exp).Start(Context{}, "a").End()
	if exp.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", exp.Dropped())
	}
	_ = exp.Close()
}
