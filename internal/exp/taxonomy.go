package exp

import (
	"fmt"
	"strings"
	"sync"

	"carbon/internal/bcpop"
	"carbon/internal/cobra"
	"carbon/internal/codba"
	"carbon/internal/core"
	"carbon/internal/nested"
	"carbon/internal/orlib"
	"carbon/internal/par"
	"carbon/internal/stats"
)

// AlgoResult is one architecture's sample over the taxonomy runs.
type AlgoResult struct {
	Name    string
	Gap     stats.Summary
	F       stats.Summary
	ULEvals stats.Summary // upper-level candidates afforded by the budget
}

// Taxonomy is the §III architecture comparison: the four implemented
// bi-level strategies raced on one class under equal budgets, with a
// Friedman omnibus test and Nemenyi critical distance over the per-run
// gap rankings (the standard multi-algorithm comparison methodology,
// Demšar 2006).
type Taxonomy struct {
	Class     orlib.Class
	Algos     []AlgoResult
	Chi2      float64   // Friedman statistic over gap ranks
	PValue    float64   // omnibus p-value
	MeanRanks []float64 // per-algorithm mean gap rank (1 = best)
	NemenyiCD float64   // critical mean-rank distance at α = 0.05
}

// taxonomyAlgos enumerates the architectures; each run function returns
// (gap%, F, ulEvals).
func (s *Settings) taxonomyAlgos() []struct {
	name string
	run  func(cl orlib.Class, seed uint64) (float64, float64, int, error)
} {
	return []struct {
		name string
		run  func(cl orlib.Class, seed uint64) (float64, float64, int, error)
	}{
		{"CARBON", func(cl orlib.Class, seed uint64) (float64, float64, int, error) {
			mk, err := marketFor(cl, s.InstanceIndex)
			if err != nil {
				return 0, 0, 0, err
			}
			res, err := core.Run(mk, s.carbonConfig(seed))
			if err != nil {
				return 0, 0, 0, err
			}
			return res.Best.GapPct, res.Best.Revenue, res.ULEvals, nil
		}},
		{"COBRA", func(cl orlib.Class, seed uint64) (float64, float64, int, error) {
			mk, err := marketFor(cl, s.InstanceIndex)
			if err != nil {
				return 0, 0, 0, err
			}
			res, err := cobra.Run(mk, s.cobraConfig(seed))
			if err != nil {
				return 0, 0, 0, err
			}
			return res.BestGapPct, res.BestRevenue, res.ULEvals, nil
		}},
		{"NESTED", func(cl orlib.Class, seed uint64) (float64, float64, int, error) {
			mk, err := marketFor(cl, s.InstanceIndex)
			if err != nil {
				return 0, 0, 0, err
			}
			cfg := nested.DefaultConfig()
			cfg.Seed = seed
			cfg.PopSize, cfg.ArchiveSize = s.PopSize, s.PopSize
			cfg.ULEvalBudget, cfg.LLEvalBudget = s.ULEvals, s.LLEvals
			cfg.Workers = 1
			res, err := nested.Run(mk, cfg)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.BestGapPct, res.BestRevenue, res.ULEvals, nil
		}},
		{"NESTED-G", func(cl orlib.Class, seed uint64) (float64, float64, int, error) {
			// The nested GA with GRASP multistart at the lower level:
			// better per-candidate answers than Chvátal, at 5 LL
			// evaluations per UL candidate.
			mk, err := marketFor(cl, s.InstanceIndex)
			if err != nil {
				return 0, 0, 0, err
			}
			cfg := nested.DefaultConfig()
			cfg.Seed = seed
			cfg.PopSize, cfg.ArchiveSize = s.PopSize, s.PopSize
			cfg.ULEvalBudget, cfg.LLEvalBudget = s.ULEvals, s.LLEvals
			cfg.GraspStarts, cfg.GraspAlpha = 5, 0.2
			cfg.Workers = 1
			res, err := nested.Run(mk, cfg)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.BestGapPct, res.BestRevenue, res.ULEvals, nil
		}},
		{"BIGA~", func(cl orlib.Class, seed uint64) (float64, float64, int, error) {
			// BIGA (Oduguwa & Roy 2002) is COBRA's ancestor; per the
			// paper's §III, COBRA differs mainly by its independent
			// improvement phases, so PhaseGens=1 approximates BIGA's
			// per-generation alternation (hence the tilde).
			mk, err := marketFor(cl, s.InstanceIndex)
			if err != nil {
				return 0, 0, 0, err
			}
			cfg := s.cobraConfig(seed)
			cfg.PhaseGens = 1
			res, err := cobra.Run(mk, cfg)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.BestGapPct, res.BestRevenue, res.ULEvals, nil
		}},
		{"CODBA", func(cl orlib.Class, seed uint64) (float64, float64, int, error) {
			mk, err := marketFor(cl, s.InstanceIndex)
			if err != nil {
				return 0, 0, 0, err
			}
			cfg := codba.DefaultConfig()
			cfg.Seed = seed
			cfg.ULPopSize, cfg.ULArchiveSize = s.PopSize, s.PopSize
			cfg.LLArchiveSize = s.PopSize
			cfg.SubPopSize, cfg.SubGens = 5, 3
			cfg.ULEvalBudget, cfg.LLEvalBudget = s.ULEvals, s.LLEvals
			cfg.Workers = 1
			res, err := codba.Run(mk, cfg)
			if err != nil {
				return 0, 0, 0, err
			}
			return res.BestGapPct, res.BestRevenue, res.ULEvals, nil
		}},
	}
}

// marketFor builds the class market. Markets hold no mutable state
// shared between runs (every run builds its own evaluators), so
// rebuilding per run merely keeps the run functions self-contained.
func marketFor(cl orlib.Class, index int) (*bcpop.Market, error) {
	return bcpop.NewMarketFromClass(cl, index)
}

// RunTaxonomy races all four architectures on one class with Runs
// repetitions each, in parallel.
func RunTaxonomy(cl orlib.Class, s Settings) (*Taxonomy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	algos := s.taxonomyAlgos()
	nAlgo := len(algos)
	gaps := make([][]float64, nAlgo)
	fs := make([][]float64, nAlgo)
	uls := make([][]float64, nAlgo)
	for a := range algos {
		gaps[a] = make([]float64, s.Runs)
		fs[a] = make([]float64, s.Runs)
		uls[a] = make([]float64, s.Runs)
	}
	var (
		mu       sync.Mutex
		firstErr error
	)
	par.ForEach(nAlgo*s.Runs, s.Workers, func(i int) {
		a, run := i/s.Runs, i%s.Runs
		seed := s.BaseSeed + uint64(run)*7919 + uint64(a)*13
		gap, f, ul, err := algos[a].run(cl, seed)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		gaps[a][run], fs[a][run], uls[a][run] = gap, f, float64(ul)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	tx := &Taxonomy{Class: cl}
	for a, algo := range algos {
		tx.Algos = append(tx.Algos, AlgoResult{
			Name:    algo.name,
			Gap:     stats.Summarize(gaps[a]),
			F:       stats.Summarize(fs[a]),
			ULEvals: stats.Summarize(uls[a]),
		})
	}
	if s.Runs >= 2 {
		// Blocks = runs, treatments = algorithms, measurement = gap.
		blocks := make([][]float64, s.Runs)
		for run := 0; run < s.Runs; run++ {
			row := make([]float64, nAlgo)
			for a := 0; a < nAlgo; a++ {
				row[a] = gaps[a][run]
			}
			blocks[run] = row
		}
		chi2, p, ranks, err := stats.Friedman(blocks)
		if err == nil {
			tx.Chi2, tx.PValue, tx.MeanRanks = chi2, p, ranks
			if cd, err := stats.NemenyiCD(nAlgo, s.Runs, 0.05); err == nil {
				tx.NemenyiCD = cd
			}
		}
	}
	return tx, nil
}

// Render prints the taxonomy comparison as a text table.
func (tx *Taxonomy) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bi-level architecture comparison on %v (equal budgets)\n", tx.Class)
	fmt.Fprintf(&b, "%-8s %12s %12s %14s %14s\n",
		"algo", "gap% (mean)", "gap% (std)", "F (mean)", "UL candidates")
	for i, a := range tx.Algos {
		rank := ""
		if i < len(tx.MeanRanks) {
			rank = fmt.Sprintf("  rank %.2f", tx.MeanRanks[i])
		}
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %14.2f %14.0f%s\n",
			a.Name, a.Gap.Mean, a.Gap.Std, a.F.Mean, a.ULEvals.Mean, rank)
	}
	if tx.MeanRanks != nil {
		fmt.Fprintf(&b, "Friedman over gap ranks: chi2=%.2f, p=%.3g; Nemenyi CD(0.05)=%.2f\n",
			tx.Chi2, tx.PValue, tx.NemenyiCD)
	}
	return b.String()
}
