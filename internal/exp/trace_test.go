package exp

import (
	"bytes"
	"strings"
	"testing"

	"carbon/internal/core"
	"carbon/internal/orlib"
	"carbon/internal/telemetry"
)

// smallTraceSettings is a one-class, two-run protocol small enough for
// unit tests.
func smallTraceSettings() Settings {
	return Settings{
		Classes:    []orlib.Class{{N: 60, M: 5}},
		Runs:       2,
		PopSize:    12,
		ULEvals:    120,
		LLEvals:    240,
		PreySample: 2,
		BaseSeed:   99,
		FigPoints:  10,
	}
}

// TestSweepEmitsLabeledTrace runs a cell with a shared JSONL observer
// and replays the trace through TraceFigure — the exp ⇄ telemetry
// integration the -trace flag of blbench exposes.
func TestSweepEmitsLabeledTrace(t *testing.T) {
	s := smallTraceSettings()
	var buf bytes.Buffer
	obs := core.NewJSONLObserver(&buf)
	s.Observer = obs
	s.Metrics = telemetry.NewRegistry()

	cell, err := RunCell(s.Classes[0], s)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := core.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]int{}
	for _, ev := range events {
		if ev.Event == "generation" {
			labels[ev.Gen.Label]++
		}
	}
	totalGens := 0
	for label, n := range labels {
		if !strings.HasPrefix(label, "carbon/60x5/run") {
			t.Fatalf("unexpected run label %q", label)
		}
		totalGens += n
	}
	if len(labels) != s.Runs {
		t.Fatalf("trace covers %d runs, want %d (%v)", len(labels), s.Runs, labels)
	}
	wantGens := 0
	for _, r := range cell.Carbon {
		wantGens += len(r.ULCurve.X)
	}
	if totalGens != wantGens {
		t.Fatalf("trace holds %d generation events, cell curves hold %d points", totalGens, wantGens)
	}
	if got := s.Metrics.Counter("bcpop.tree_evals").Load(); got <= 0 {
		t.Fatal("sweep registry aggregated no evaluator metrics")
	}

	fig, err := TraceFigure(bytes.NewReader(buf.Bytes()), s.FigPoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.UL.X) == 0 || len(fig.Gap.X) == 0 {
		t.Fatalf("trace figure is empty: %+v", fig)
	}
	if svg := fig.SVG(); !strings.Contains(svg, "<svg") || !strings.Contains(svg, "polyline") {
		t.Fatal("trace figure does not render")
	}
}

func TestTraceFigureRejectsEmptyTrace(t *testing.T) {
	if _, err := TraceFigure(strings.NewReader(""), 10); err == nil {
		t.Fatal("empty trace accepted")
	}
}
