package exp

import (
	"encoding/xml"
	"strings"
	"testing"

	"carbon/internal/orlib"
	"carbon/internal/stats"
)

// tinySettings is the smallest meaningful protocol for integration tests.
func tinySettings() Settings {
	return Settings{
		Classes:    []orlib.Class{{N: 60, M: 5}},
		Runs:       3,
		PopSize:    12,
		ULEvals:    400,
		LLEvals:    800,
		PreySample: 2,
		BaseSeed:   99,
		FigPoints:  20,
	}
}

func TestSettingsValidate(t *testing.T) {
	good := tinySettings()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := []func(*Settings){
		func(s *Settings) { s.Classes = nil },
		func(s *Settings) { s.Runs = 0 },
		func(s *Settings) { s.PopSize = 1 },
		func(s *Settings) { s.ULEvals = 5 },
		func(s *Settings) { s.PreySample = 0 },
		func(s *Settings) { s.FigPoints = 1 },
	}
	for i, m := range mutate {
		s := tinySettings()
		m(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestFullMatchesPaperProtocol(t *testing.T) {
	s := Full()
	if s.Runs != 30 {
		t.Fatalf("Runs = %d, want the paper's 30", s.Runs)
	}
	if s.PopSize != 100 || s.ULEvals != 50000 || s.LLEvals != 50000 {
		t.Fatalf("Table II budgets: %+v", s)
	}
	if len(s.Classes) != 9 {
		t.Fatalf("classes = %d, want 9", len(s.Classes))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIIDefaults(t *testing.T) {
	// The configs the harness hands the algorithms must carry Table II's
	// operator parameters regardless of scaling.
	s := Quick()
	cc := s.carbonConfig(1)
	if cc.ULCrossoverProb != 0.85 || cc.ULMutationProb != 0.01 {
		t.Fatalf("CARBON UL operators: %+v", cc)
	}
	if cc.LLCrossoverProb != 0.85 || cc.LLMutationProb != 0.10 || cc.LLReproProb != 0.05 {
		t.Fatalf("CARBON GP operators: %+v", cc)
	}
	bc := s.cobraConfig(1)
	if bc.ULCrossoverProb != 0.85 || bc.ULMutationProb != 0.01 || bc.LLCrossoverProb != 0.85 {
		t.Fatalf("COBRA operators: %+v", bc)
	}
}

func TestRunCell(t *testing.T) {
	cell, err := RunCell(orlib.Class{N: 60, M: 5}, tinySettings())
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Carbon) != 3 || len(cell.Cobra) != 3 {
		t.Fatalf("run counts %d/%d", len(cell.Carbon), len(cell.Cobra))
	}
	for i, r := range cell.Carbon {
		if r.GapPct < 0 || len(r.ULCurve.X) == 0 {
			t.Fatalf("carbon run %d incomplete: %+v", i, r)
		}
	}
	for i, r := range cell.Cobra {
		if r.GapPct < 0 || len(r.ULCurve.X) == 0 {
			t.Fatalf("cobra run %d incomplete: %+v", i, r)
		}
	}
	if cell.PGap < 0 || cell.PGap > 1 || cell.PF < 0 || cell.PF > 1 {
		t.Fatalf("p-values out of range: %v %v", cell.PGap, cell.PF)
	}
	if cell.CarbonGap.N != 3 {
		t.Fatal("summaries not computed")
	}
}

func TestRunCellDeterministic(t *testing.T) {
	s := tinySettings()
	s.Workers = 2
	a, err := RunCell(orlib.Class{N: 60, M: 5}, s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(orlib.Class{N: 60, M: 5}, s)
	if err != nil {
		t.Fatal(err)
	}
	if a.CarbonGap.Mean != b.CarbonGap.Mean || a.CobraF.Mean != b.CobraF.Mean {
		t.Fatal("cell results not reproducible")
	}
}

func TestTablesRenderAndShape(t *testing.T) {
	s := tinySettings()
	s.Classes = []orlib.Class{{N: 60, M: 5}, {N: 80, M: 10}}
	tabs, err := RunTables(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	t3 := tabs.TableIII()
	if !strings.Contains(t3, "TABLE III") || !strings.Contains(t3, "Average") {
		t.Fatalf("Table III rendering:\n%s", t3)
	}
	if !strings.Contains(t3, "60") || !strings.Contains(t3, "80") {
		t.Fatalf("class rows missing:\n%s", t3)
	}
	t4 := tabs.TableIV()
	if !strings.Contains(t4, "TABLE IV") {
		t.Fatalf("Table IV rendering:\n%s", t4)
	}
	csv := tabs.CSV()
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("CSV rows:\n%s", csv)
	}
	shape := tabs.ShapeReport()
	if !strings.Contains(shape, "/2 classes") {
		t.Fatalf("shape report:\n%s", shape)
	}
}

func TestRelaxationOrdering(t *testing.T) {
	// Eq. 3's empirical claim: CARBON's LL answers sit between the LP
	// bound and COBRA's (gap_carbon ≤ gap_cobra, both ≥ 0) — here on a
	// small class with modest budgets.
	s := tinySettings()
	s.Runs = 3
	s.ULEvals, s.LLEvals = 800, 1600
	cell, err := RunCell(orlib.Class{N: 60, M: 5}, s)
	if err != nil {
		t.Fatal(err)
	}
	if cell.CarbonGap.Mean < 0 || cell.CobraGap.Mean < 0 {
		t.Fatalf("negative mean gaps: %v %v", cell.CarbonGap.Mean, cell.CobraGap.Mean)
	}
	if cell.CarbonGap.Mean > cell.CobraGap.Mean {
		t.Fatalf("ordering violated: CARBON %v%% > COBRA %v%%",
			cell.CarbonGap.Mean, cell.CobraGap.Mean)
	}
}

func TestFigures(t *testing.T) {
	cell, err := RunCell(orlib.Class{N: 60, M: 5}, tinySettings())
	if err != nil {
		t.Fatal(err)
	}
	fig4, fig5 := cell.Figures(20)
	if fig4.Algo != "CARBON" || fig5.Algo != "COBRA" {
		t.Fatal("figure labels wrong")
	}
	if len(fig4.UL.X) != 20 || len(fig5.Gap.X) != 20 {
		t.Fatalf("grid sizes %d/%d", len(fig4.UL.X), len(fig5.Gap.X))
	}
	// CARBON's averaged archive curves stay monotone.
	if m := stats.Monotonicity(fig4.UL.Y, +1); m < 1 {
		t.Fatalf("averaged CARBON UL curve monotonicity %v", m)
	}
	if m := stats.Monotonicity(fig4.Gap.Y, -1); m < 1 {
		t.Fatalf("averaged CARBON gap curve monotonicity %v", m)
	}
	csv := fig4.CSV()
	if !strings.Contains(csv, "evals,best_F,best_gap") {
		t.Fatalf("figure CSV:\n%s", csv)
	}
	art := fig4.ASCII(40, 8)
	if !strings.Contains(art, "*") {
		t.Fatalf("ASCII plot empty:\n%s", art)
	}
}

func TestPlotASCIIEdgeCases(t *testing.T) {
	if got := plotASCII(stats.Series{}, 40, 8); !strings.Contains(got, "no data") {
		t.Fatal("empty series should say no data")
	}
	flat := stats.Series{X: []float64{0, 1}, Y: []float64{5, 5}}
	if got := plotASCII(flat, 40, 8); !strings.Contains(got, "*") {
		t.Fatal("flat series should still plot")
	}
}

func TestRunTaxonomy(t *testing.T) {
	s := tinySettings()
	s.Runs = 2
	tx, err := RunTaxonomy(orlib.Class{N: 60, M: 5}, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Algos) != 6 {
		t.Fatalf("%d architectures", len(tx.Algos))
	}
	names := map[string]bool{}
	for _, a := range tx.Algos {
		names[a.Name] = true
		if a.Gap.N != 2 || a.Gap.Mean < 0 {
			t.Fatalf("%s: bad gap summary %+v", a.Name, a.Gap)
		}
		if a.ULEvals.Mean <= 0 {
			t.Fatalf("%s: no UL candidates recorded", a.Name)
		}
	}
	for _, want := range []string{"CARBON", "COBRA", "BIGA~", "NESTED", "NESTED-G", "CODBA"} {
		if !names[want] {
			t.Fatalf("missing architecture %s", want)
		}
	}
	out := tx.Render()
	if !strings.Contains(out, "CARBON") || !strings.Contains(out, "UL candidates") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRunMultiCustomer(t *testing.T) {
	s := tinySettings()
	s.Runs = 2
	mc, err := RunMultiCustomer(orlib.Class{N: 60, M: 5}, []int{1, 2}, 0.2, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Rows) != 2 {
		t.Fatalf("%d rows", len(mc.Rows))
	}
	for _, row := range mc.Rows {
		if row.Gap.Mean < 0 || row.Revenue.Mean < 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	// Aggregate revenue should not shrink with more customers.
	if mc.Rows[1].Revenue.Mean < mc.Rows[0].Revenue.Mean {
		t.Fatalf("revenue shrank with customers: %v → %v",
			mc.Rows[0].Revenue.Mean, mc.Rows[1].Revenue.Mean)
	}
	if !strings.Contains(mc.Render(), "customers") {
		t.Fatal("render broken")
	}
}

func TestFigureSVGWellFormed(t *testing.T) {
	cell, err := RunCell(orlib.Class{N: 60, M: 5}, tinySettings())
	if err != nil {
		t.Fatal(err)
	}
	fig4, fig5 := cell.Figures(15)
	for _, svg := range []string{fig4.SVG(), fig5.SVG()} {
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			_, derr := dec.Token()
			if derr != nil {
				if derr.Error() == "EOF" {
					break
				}
				t.Fatalf("figure SVG not well-formed: %v", derr)
			}
		}
		if !strings.Contains(svg, "polyline") {
			t.Fatal("figure SVG has no curves")
		}
	}
}
