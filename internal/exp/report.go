package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"carbon/internal/orlib"
	"carbon/internal/stats"
)

// Report is the JSON-serializable form of a sweep: everything needed to
// re-render tables, figures and significance tests without re-running
// the experiments. cmd/blbench writes it with -json; downstream tooling
// (or a later blbench invocation) reads it back with LoadReport.
type Report struct {
	Protocol ProtocolInfo `json:"protocol"`
	Cells    []CellReport `json:"cells"`
}

// ProtocolInfo records the settings a sweep ran under.
type ProtocolInfo struct {
	Runs       int    `json:"runs"`
	PopSize    int    `json:"pop_size"`
	ULEvals    int    `json:"ul_evals"`
	LLEvals    int    `json:"ll_evals"`
	PreySample int    `json:"prey_sample"`
	BaseSeed   uint64 `json:"base_seed"`
}

// CellReport is one class's serialized results.
type CellReport struct {
	N      int         `json:"n"`
	M      int         `json:"m"`
	Carbon []RunReport `json:"carbon"`
	Cobra  []RunReport `json:"cobra"`
	PGap   float64     `json:"p_gap"`
	PF     float64     `json:"p_f"`
}

// RunReport is one run's serialized outcome, curves included.
type RunReport struct {
	GapPct  float64   `json:"gap_pct"`
	Revenue float64   `json:"revenue"`
	ULX     []float64 `json:"ul_x"`
	ULY     []float64 `json:"ul_y"`
	GapX    []float64 `json:"gap_x"`
	GapY    []float64 `json:"gap_y"`
}

// BuildReport serializes a sweep.
func BuildReport(s Settings, t *Tables) *Report {
	rep := &Report{Protocol: ProtocolInfo{
		Runs: s.Runs, PopSize: s.PopSize,
		ULEvals: s.ULEvals, LLEvals: s.LLEvals,
		PreySample: s.PreySample, BaseSeed: s.BaseSeed,
	}}
	for _, c := range t.Cells {
		cr := CellReport{N: c.Class.N, M: c.Class.M, PGap: c.PGap, PF: c.PF}
		for _, r := range c.Carbon {
			cr.Carbon = append(cr.Carbon, runReport(r))
		}
		for _, r := range c.Cobra {
			cr.Cobra = append(cr.Cobra, runReport(r))
		}
		rep.Cells = append(rep.Cells, cr)
	}
	return rep
}

func runReport(r RunData) RunReport {
	return RunReport{
		GapPct: r.GapPct, Revenue: r.Revenue,
		ULX: r.ULCurve.X, ULY: r.ULCurve.Y,
		GapX: r.GapCurve.X, GapY: r.GapCurve.Y,
	}
}

// Write emits the report as indented JSON.
func (rep *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// LoadReport parses a report written by Write.
func LoadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("exp: parsing report: %w", err)
	}
	return &rep, nil
}

// Tables reconstructs the in-memory sweep from a report so every
// renderer (TableIII, TableIV, Figures, ShapeReport) works on loaded
// data exactly as on fresh runs.
func (rep *Report) Tables() (*Tables, error) {
	t := &Tables{}
	for _, cr := range rep.Cells {
		if len(cr.Carbon) == 0 || len(cr.Cobra) == 0 {
			return nil, fmt.Errorf("exp: cell n=%d m=%d has empty run lists", cr.N, cr.M)
		}
		cell := &Cell{Class: orlib.Class{N: cr.N, M: cr.M}, PGap: cr.PGap, PF: cr.PF}
		for _, r := range cr.Carbon {
			cell.Carbon = append(cell.Carbon, runData(r))
		}
		for _, r := range cr.Cobra {
			cell.Cobra = append(cell.Cobra, runData(r))
		}
		cgaps, cfs := extract(cell.Carbon)
		bgaps, bfs := extract(cell.Cobra)
		cell.CarbonGap = stats.Summarize(cgaps)
		cell.CobraGap = stats.Summarize(bgaps)
		cell.CarbonF = stats.Summarize(cfs)
		cell.CobraF = stats.Summarize(bfs)
		t.Cells = append(t.Cells, cell)
	}
	return t, nil
}

func runData(r RunReport) RunData {
	return RunData{
		GapPct: r.GapPct, Revenue: r.Revenue,
		ULCurve:  stats.Series{X: r.ULX, Y: r.ULY},
		GapCurve: stats.Series{X: r.GapX, Y: r.GapY},
	}
}
