// Package exp is the experiment harness for §V of the paper: it runs
// CARBON and COBRA side by side over the nine instance classes and
// renders the paper's two tables and two figures.
//
//	Table III — best %-gap to LL optimality per class (CARBON vs COBRA)
//	Table IV  — upper-level objective values per class
//	Fig 4     — CARBON convergence curves (UL fitness ↑, gap ↓), n=500 m=30
//	Fig 5     — COBRA convergence curves (see-saw), same class
//
// The paper's full protocol (30 independent runs, 50 000 evaluations per
// level, population 100) is available through Full(); Quick() scales the
// budgets down so the whole sweep finishes on a laptop while preserving
// the comparisons' shape. Independent runs execute in parallel; each run
// is internally sequential so that (seed, workers=1) reproducibility
// holds per run.
package exp

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"carbon/internal/bcpop"
	"carbon/internal/cobra"
	"carbon/internal/core"
	"carbon/internal/orlib"
	"carbon/internal/par"
	"carbon/internal/plot"
	"carbon/internal/stats"
	"carbon/internal/telemetry"
)

// Settings scale the §V protocol.
type Settings struct {
	Classes       []orlib.Class
	Runs          int // independent runs per (class, algorithm)
	PopSize       int // population and archive size at both levels
	ULEvals       int // UL fitness-evaluation budget per run
	LLEvals       int // LL fitness-evaluation budget per run
	PreySample    int // CARBON: prey sampled per predator evaluation
	InstanceIndex int // which generated instance of each class
	BaseSeed      uint64
	Workers       int // parallel runs (0 = GOMAXPROCS)
	FigPoints     int // resampling grid for averaged curves

	// Observer, when non-nil, is attached to every CARBON run of the
	// sweep. Runs execute concurrently, so it must be safe for
	// concurrent use (core.JSONLObserver is); events carry a
	// "carbon/<class>/run<i>" label for demultiplexing.
	Observer core.Observer

	// Metrics, when non-nil, aggregates hot-path telemetry across the
	// whole sweep into one registry.
	Metrics *telemetry.Registry
}

// Full returns the paper-faithful §V protocol (Table II budgets).
func Full() Settings {
	return Settings{
		Classes:    orlib.PaperClasses,
		Runs:       30,
		PopSize:    100,
		ULEvals:    50000,
		LLEvals:    50000,
		PreySample: 4,
		BaseSeed:   2018,
		FigPoints:  100,
	}
}

// Quick returns a laptop-scale protocol preserving the comparison shape.
func Quick() Settings {
	return Settings{
		Classes:    orlib.PaperClasses,
		Runs:       5,
		PopSize:    24,
		ULEvals:    1200,
		LLEvals:    2400,
		PreySample: 2,
		BaseSeed:   2018,
		FigPoints:  60,
	}
}

// Validate rejects unusable settings.
func (s *Settings) Validate() error {
	switch {
	case len(s.Classes) == 0:
		return fmt.Errorf("exp: no classes")
	case s.Runs < 1:
		return fmt.Errorf("exp: Runs = %d", s.Runs)
	case s.PopSize < 2:
		return fmt.Errorf("exp: PopSize = %d", s.PopSize)
	case s.ULEvals < s.PopSize || s.LLEvals < s.PopSize:
		return fmt.Errorf("exp: budgets below one generation")
	case s.PreySample < 1:
		return fmt.Errorf("exp: PreySample = %d", s.PreySample)
	case s.FigPoints < 2:
		return fmt.Errorf("exp: FigPoints = %d", s.FigPoints)
	}
	return nil
}

func (s *Settings) carbonConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize, cfg.LLPopSize = s.PopSize, s.PopSize
	cfg.ULArchiveSize, cfg.LLArchiveSize = s.PopSize, s.PopSize
	cfg.ULEvalBudget, cfg.LLEvalBudget = s.ULEvals, s.LLEvals
	cfg.PreySample = s.PreySample
	cfg.Workers = 1
	return cfg
}

func (s *Settings) cobraConfig(seed uint64) cobra.Config {
	cfg := cobra.DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize, cfg.LLPopSize = s.PopSize, s.PopSize
	cfg.ULArchiveSize, cfg.LLArchiveSize = s.PopSize, s.PopSize
	cfg.ULEvalBudget, cfg.LLEvalBudget = s.ULEvals, s.LLEvals
	cfg.CoevPairs = max(2, s.PopSize/5)
	cfg.ArchiveInject = max(1, s.PopSize/10)
	cfg.Workers = 1
	return cfg
}

// RunData is one algorithm's per-run record within a cell.
type RunData struct {
	GapPct   float64
	Revenue  float64
	ULCurve  stats.Series
	GapCurve stats.Series
}

// Cell is one (class) row of Tables III/IV: both algorithms' samples and
// summaries plus rank-sum p-values.
type Cell struct {
	Class     orlib.Class
	Carbon    []RunData
	Cobra     []RunData
	CarbonGap stats.Summary
	CobraGap  stats.Summary
	CarbonF   stats.Summary
	CobraF    stats.Summary
	PGap      float64 // rank-sum p for the gap samples
	PF        float64 // rank-sum p for the revenue samples
}

// RunCell executes both algorithms Runs times on one class. Runs are
// dispatched in parallel; seeds are derived deterministically from
// BaseSeed, the class and the run index.
func RunCell(cl orlib.Class, s Settings) (*Cell, error) {
	return RunCellContext(context.Background(), cl, s)
}

// RunCellContext is RunCell with cooperative cancellation: no new run
// starts after the context is canceled, CARBON runs additionally stop at
// their next generation boundary, and the first context error is
// returned. Sweeps driven from a CLI cancel cleanly on Ctrl-C instead of
// running their budgets to completion.
func RunCellContext(ctx context.Context, cl orlib.Class, s Settings) (*Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	mk, err := bcpop.NewMarketFromClass(cl, s.InstanceIndex)
	if err != nil {
		return nil, fmt.Errorf("exp: class %v: %w", cl, err)
	}
	cell := &Cell{
		Class:  cl,
		Carbon: make([]RunData, s.Runs),
		Cobra:  make([]RunData, s.Runs),
	}
	classSalt := uint64(cl.N)*1009 + uint64(cl.M)*31
	var (
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	par.ForEach(2*s.Runs, s.Workers, func(i int) {
		if err := ctx.Err(); err != nil {
			setErr(err)
			return
		}
		run := i / 2
		seed := s.BaseSeed + classSalt + uint64(run)*7919
		if i%2 == 0 {
			cfg := s.carbonConfig(seed)
			cfg.Observer = s.Observer
			cfg.Metrics = s.Metrics
			cfg.RunLabel = fmt.Sprintf("carbon/%dx%d/run%d", cl.N, cl.M, run)
			res, err := core.RunContext(ctx, mk, cfg)
			if err != nil {
				setErr(err)
				return
			}
			cell.Carbon[run] = RunData{
				GapPct:   res.Best.GapPct,
				Revenue:  res.Best.Revenue,
				ULCurve:  res.ULCurve,
				GapCurve: res.GapCurve,
			}
		} else {
			res, err := cobra.Run(mk, s.cobraConfig(seed))
			if err != nil {
				setErr(err)
				return
			}
			cell.Cobra[run] = RunData{
				GapPct:   res.BestGapPct,
				Revenue:  res.BestRevenue,
				ULCurve:  res.ULCurve,
				GapCurve: res.GapCurve,
			}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	cgaps, cfs := extract(cell.Carbon)
	bgaps, bfs := extract(cell.Cobra)
	cell.CarbonGap = stats.Summarize(cgaps)
	cell.CobraGap = stats.Summarize(bgaps)
	cell.CarbonF = stats.Summarize(cfs)
	cell.CobraF = stats.Summarize(bfs)
	_, cell.PGap = stats.RankSum(cgaps, bgaps)
	_, cell.PF = stats.RankSum(cfs, bfs)
	return cell, nil
}

func extract(rs []RunData) (gaps, fs []float64) {
	gaps = make([]float64, len(rs))
	fs = make([]float64, len(rs))
	for i, r := range rs {
		gaps[i] = r.GapPct
		fs[i] = r.Revenue
	}
	return gaps, fs
}

// Tables is the full §V sweep.
type Tables struct {
	Cells []*Cell
}

// RunTables executes the sweep over every class in the settings.
func RunTables(s Settings, progress func(string)) (*Tables, error) {
	return RunTablesContext(context.Background(), s, progress)
}

// RunTablesContext is RunTables with cooperative cancellation (see
// RunCellContext).
func RunTablesContext(ctx context.Context, s Settings, progress func(string)) (*Tables, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Tables{}
	for _, cl := range s.Classes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("class %v: %d runs × 2 algorithms", cl, s.Runs))
		}
		cell, err := RunCellContext(ctx, cl, s)
		if err != nil {
			return nil, err
		}
		t.Cells = append(t.Cells, cell)
	}
	return t, nil
}

// TableIII renders the %-gap table in the paper's layout.
func (t *Tables) TableIII() string {
	var b strings.Builder
	b.WriteString("TABLE III: %-gap to LL optimality\n")
	fmt.Fprintf(&b, "%-12s %-14s %12s %12s %10s\n",
		"# Variables", "# Constraints", "CARBON", "COBRA", "p(gap)")
	carbonSum, cobraSum := 0.0, 0.0
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "%-12d %-14d %12.2f %12.2f %10.3g\n",
			c.Class.N, c.Class.M, c.CarbonGap.Mean, c.CobraGap.Mean, c.PGap)
		carbonSum += c.CarbonGap.Mean
		cobraSum += c.CobraGap.Mean
	}
	n := float64(len(t.Cells))
	fmt.Fprintf(&b, "%-27s %12.2f %12.2f\n", "Average", carbonSum/n, cobraSum/n)
	return b.String()
}

// TableIV renders the UL objective table in the paper's layout.
func (t *Tables) TableIV() string {
	var b strings.Builder
	b.WriteString("TABLE IV: UL objective values\n")
	fmt.Fprintf(&b, "%-12s %-14s %12s %12s %10s\n",
		"# Variables", "# Constraints", "CARBON", "COBRA", "p(F)")
	carbonSum, cobraSum := 0.0, 0.0
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "%-12d %-14d %12.2f %12.2f %10.3g\n",
			c.Class.N, c.Class.M, c.CarbonF.Mean, c.CobraF.Mean, c.PF)
		carbonSum += c.CarbonF.Mean
		cobraSum += c.CobraF.Mean
	}
	n := float64(len(t.Cells))
	fmt.Fprintf(&b, "%-27s %12.2f %12.2f\n", "Average", carbonSum/n, cobraSum/n)
	return b.String()
}

// CSV renders the sweep as one machine-readable table.
func (t *Tables) CSV() string {
	var b strings.Builder
	b.WriteString("n,m,carbon_gap_mean,carbon_gap_std,cobra_gap_mean,cobra_gap_std," +
		"carbon_F_mean,carbon_F_std,cobra_F_mean,cobra_F_std,p_gap,p_F\n")
	for _, c := range t.Cells {
		fmt.Fprintf(&b, "%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4g,%.4g\n",
			c.Class.N, c.Class.M,
			c.CarbonGap.Mean, c.CarbonGap.Std, c.CobraGap.Mean, c.CobraGap.Std,
			c.CarbonF.Mean, c.CarbonF.Std, c.CobraF.Mean, c.CobraF.Std,
			c.PGap, c.PF)
	}
	return b.String()
}

// ShapeReport checks the qualitative claims of §V against the sweep and
// reports pass/fail per claim — the reproduction contract of DESIGN.md:
// CARBON's gap below COBRA's on every class, and COBRA's reported UL
// objective above CARBON's (the Eq. 2/3 relaxation-ordering argument).
func (t *Tables) ShapeReport() string {
	var b strings.Builder
	gapWins, fOrder := 0, 0
	for _, c := range t.Cells {
		if c.CarbonGap.Mean < c.CobraGap.Mean {
			gapWins++
		}
		if c.CobraF.Mean > c.CarbonF.Mean {
			fOrder++
		}
	}
	n := len(t.Cells)
	fmt.Fprintf(&b, "shape: CARBON gap < COBRA gap on %d/%d classes\n", gapWins, n)
	fmt.Fprintf(&b, "shape: COBRA UL objective > CARBON (Eq. 3 over-estimation) on %d/%d classes\n", fOrder, n)
	return b.String()
}

// Figure is a pair of averaged convergence curves for one algorithm.
type Figure struct {
	Class orlib.Class
	Algo  string
	UL    stats.Series // mean best-F curve
	Gap   stats.Series // mean gap curve
}

// Figures extracts Fig 4 (CARBON) and Fig 5 (COBRA) data from an
// already-run cell: the per-run curves averaged onto a common grid.
func (c *Cell) Figures(points int) (fig4, fig5 Figure) {
	carbonUL := make([]stats.Series, len(c.Carbon))
	carbonGap := make([]stats.Series, len(c.Carbon))
	for i, r := range c.Carbon {
		carbonUL[i] = r.ULCurve
		carbonGap[i] = r.GapCurve
	}
	cobraUL := make([]stats.Series, len(c.Cobra))
	cobraGap := make([]stats.Series, len(c.Cobra))
	for i, r := range c.Cobra {
		cobraUL[i] = r.ULCurve
		cobraGap[i] = r.GapCurve
	}
	fig4 = Figure{
		Class: c.Class, Algo: "CARBON",
		UL:  stats.AverageSeries(carbonUL, points),
		Gap: stats.AverageSeries(carbonGap, points),
	}
	fig5 = Figure{
		Class: c.Class, Algo: "COBRA",
		UL:  stats.AverageSeries(cobraUL, points),
		Gap: stats.AverageSeries(cobraGap, points),
	}
	return fig4, fig5
}

// CSV renders the figure as evaluation,ul,gap rows.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s convergence, class %v\n", f.Algo, f.Class)
	b.WriteString("evals,best_F,best_gap\n")
	for i := range f.UL.X {
		gap := ""
		if i < len(f.Gap.Y) {
			gap = fmt.Sprintf("%.4f", f.Gap.Y[i])
		}
		fmt.Fprintf(&b, "%.0f,%.4f,%s\n", f.UL.X[i], f.UL.Y[i], gap)
	}
	return b.String()
}

// SVG renders the figure as a standalone SVG document: the UL-fitness
// curve stacked above the gap curve, the layout of the paper's Figs 4/5.
func (f Figure) SVG() string {
	title := fmt.Sprintf("%s on %v", f.Algo, f.Class)
	ul := plot.Line(title+" — best UL fitness (F)", "fitness evaluations", "F",
		"best F", f.UL.X, f.UL.Y)
	gap := plot.Line(title+" — best %-gap to LL optimality", "fitness evaluations", "gap (%)",
		"best gap", f.Gap.X, f.Gap.Y)
	gap.Series[0].Color = "#d62728"
	return plot.Stack(720, 300, ul, gap)
}

// TraceFigure rebuilds a Figure from a JSONL run log (the
// core.JSONLObserver format): generation events are grouped into
// per-run curves by their label (falling back to island index), then
// averaged onto a points-sized grid exactly like Figures — so a trace
// captured with `carbon -trace` or `blbench -trace` replays into the
// same SVG/CSV/ASCII pipeline without re-running anything.
func TraceFigure(r io.Reader, points int) (Figure, error) {
	events, err := core.ReadTrace(r)
	if err != nil {
		return Figure{}, err
	}
	keys := []string{}
	uls := map[string]*stats.Series{}
	gaps := map[string]*stats.Series{}
	for _, ev := range events {
		if ev.Event != "generation" {
			continue
		}
		gs := ev.Gen
		key := fmt.Sprintf("%s#%d", gs.Label, gs.Island)
		if _, ok := uls[key]; !ok {
			keys = append(keys, key)
			uls[key] = &stats.Series{}
			gaps[key] = &stats.Series{}
		}
		x := float64(gs.ULEvals + gs.LLEvals)
		uls[key].X = append(uls[key].X, x)
		uls[key].Y = append(uls[key].Y, gs.BestRevenue)
		gaps[key].X = append(gaps[key].X, x)
		gaps[key].Y = append(gaps[key].Y, gs.BestGap)
	}
	if len(keys) == 0 {
		return Figure{}, fmt.Errorf("exp: trace holds no generation events")
	}
	ulRuns := make([]stats.Series, len(keys))
	gapRuns := make([]stats.Series, len(keys))
	for i, key := range keys {
		ulRuns[i] = *uls[key]
		gapRuns[i] = *gaps[key]
	}
	return Figure{
		Algo: "trace",
		UL:   stats.AverageSeries(ulRuns, points),
		Gap:  stats.AverageSeries(gapRuns, points),
	}, nil
}

// ASCII renders both curves as terminal plots.
func (f Figure) ASCII(width, height int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %v — best UL fitness (F)\n", f.Algo, f.Class)
	b.WriteString(plotASCII(f.UL, width, height))
	fmt.Fprintf(&b, "%s on %v — best %%-gap\n", f.Algo, f.Class)
	b.WriteString(plotASCII(f.Gap, width, height))
	return b.String()
}

// plotASCII draws a single series with a dot-matrix plot.
func plotASCII(s stats.Series, width, height int) string {
	if len(s.Y) == 0 || width < 8 || height < 2 {
		return "(no data)\n"
	}
	lo, hi := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, y := range s.Y {
		col := i * (width - 1) / max(1, len(s.Y)-1)
		row := int(float64(height-1) * (hi - y) / (hi - lo))
		grid[row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%11.2f ┐\n", hi)
	for _, row := range grid {
		fmt.Fprintf(&b, "%12s│%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%11.2f ┘ evals: %.0f → %.0f\n", lo, s.X[0], s.X[len(s.X)-1])
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
