package exp

import (
	"fmt"
	"strings"
	"sync"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/orlib"
	"carbon/internal/par"
	"carbon/internal/stats"
)

// CustomerRow is one K-customers row of the multi-customer sweep.
type CustomerRow struct {
	Customers int
	Gap       stats.Summary
	Revenue   stats.Summary
	PerCust   stats.Summary // revenue / customers
}

// MultiCustomer sweeps CARBON over growing customer counts on one base
// class — the extension of the paper's single-CSC simplification. The
// qualitative expectation: aggregate revenue grows with K while the
// heuristics' %-gap stays flat, because Eq. 1 normalizes per induced
// instance regardless of block count.
type MultiCustomer struct {
	Class     orlib.Class
	Variation float64
	Rows      []CustomerRow
}

// RunMultiCustomer executes the sweep for the given customer counts.
func RunMultiCustomer(cl orlib.Class, counts []int, variation float64, s Settings) (*MultiCustomer, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4}
	}
	base, err := orlib.GenerateCovering(cl, s.InstanceIndex)
	if err != nil {
		return nil, err
	}
	leaders := cl.N / 10
	if leaders < 1 {
		leaders = 1
	}
	out := &MultiCustomer{Class: cl, Variation: variation}
	for _, k := range counts {
		mk, err := bcpop.NewMultiMarket(base, leaders, k, variation, s.BaseSeed)
		if err != nil {
			return nil, err
		}
		gaps := make([]float64, s.Runs)
		revs := make([]float64, s.Runs)
		var (
			mu       sync.Mutex
			firstErr error
		)
		par.ForEach(s.Runs, s.Workers, func(run int) {
			res, err := core.Run(mk, s.carbonConfig(s.BaseSeed+uint64(run)*7919+uint64(k)))
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			gaps[run], revs[run] = res.Best.GapPct, res.Best.Revenue
		})
		if firstErr != nil {
			return nil, firstErr
		}
		per := make([]float64, s.Runs)
		for i := range revs {
			per[i] = revs[i] / float64(k)
		}
		out.Rows = append(out.Rows, CustomerRow{
			Customers: k,
			Gap:       stats.Summarize(gaps),
			Revenue:   stats.Summarize(revs),
			PerCust:   stats.Summarize(per),
		})
	}
	return out, nil
}

// Render prints the sweep as a text table.
func (mc *MultiCustomer) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-customer extension on %v (variation %.0f%%): CARBON\n",
		mc.Class, 100*mc.Variation)
	fmt.Fprintf(&b, "%-10s %12s %14s %16s\n", "customers", "gap% (mean)", "revenue (mean)", "rev/customer")
	for _, row := range mc.Rows {
		fmt.Fprintf(&b, "%-10d %12.2f %14.2f %16.2f\n",
			row.Customers, row.Gap.Mean, row.Revenue.Mean, row.PerCust.Mean)
	}
	return b.String()
}
