package exp

import (
	"strings"
	"testing"

	"carbon/internal/orlib"
	"carbon/internal/stats"
)

// syntheticTables builds a deterministic two-cell sweep without running
// any algorithm, so rendering can be compared against exact golden text.
func syntheticTables() *Tables {
	mk := func(cl orlib.Class, cGaps, bGaps, cFs, bFs []float64) *Cell {
		c := &Cell{Class: cl}
		for i := range cGaps {
			c.Carbon = append(c.Carbon, RunData{GapPct: cGaps[i], Revenue: cFs[i]})
			c.Cobra = append(c.Cobra, RunData{GapPct: bGaps[i], Revenue: bFs[i]})
		}
		c.CarbonGap = stats.Summarize(cGaps)
		c.CobraGap = stats.Summarize(bGaps)
		c.CarbonF = stats.Summarize(cFs)
		c.CobraF = stats.Summarize(bFs)
		c.PGap, c.PF = 0.025, 0.5
		return c
	}
	return &Tables{Cells: []*Cell{
		mk(orlib.Class{N: 100, M: 5},
			[]float64{1, 2}, []float64{10, 12}, []float64{1000, 1100}, []float64{1500, 1700}),
		mk(orlib.Class{N: 250, M: 10},
			[]float64{0.5, 0.7}, []float64{25, 27}, []float64{2000, 2200}, []float64{3000, 3200}),
	}}
}

func TestTableIIIGolden(t *testing.T) {
	got := syntheticTables().TableIII()
	want := strings.Join([]string{
		"TABLE III: %-gap to LL optimality",
		"# Variables  # Constraints        CARBON        COBRA     p(gap)",
		"100          5                      1.50        11.00      0.025",
		"250          10                     0.60        26.00      0.025",
		"Average                             1.05        18.50",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("Table III golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTableIVGolden(t *testing.T) {
	got := syntheticTables().TableIV()
	want := strings.Join([]string{
		"TABLE IV: UL objective values",
		"# Variables  # Constraints        CARBON        COBRA       p(F)",
		"100          5                   1050.00      1600.00        0.5",
		"250          10                  2100.00      3100.00        0.5",
		"Average                          1575.00      2350.00",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("Table IV golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCSVGolden(t *testing.T) {
	got := syntheticTables().CSV()
	wantFirst := "n,m,carbon_gap_mean,carbon_gap_std,cobra_gap_mean,cobra_gap_std," +
		"carbon_F_mean,carbon_F_std,cobra_F_mean,cobra_F_std,p_gap,p_F"
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if lines[0] != wantFirst {
		t.Fatalf("CSV header: %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("CSV rows: %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "100,5,1.5000,") {
		t.Fatalf("CSV row 1: %q", lines[1])
	}
}

func TestShapeReportGolden(t *testing.T) {
	got := syntheticTables().ShapeReport()
	want := "shape: CARBON gap < COBRA gap on 2/2 classes\n" +
		"shape: COBRA UL objective > CARBON (Eq. 3 over-estimation) on 2/2 classes\n"
	if got != want {
		t.Fatalf("shape golden mismatch:\n%s", got)
	}
}
