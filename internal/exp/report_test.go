package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"carbon/internal/orlib"
)

func TestReportRoundTrip(t *testing.T) {
	s := tinySettings()
	tabs, err := RunTables(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(s, tabs)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Protocol.Runs != s.Runs || loaded.Protocol.BaseSeed != s.BaseSeed {
		t.Fatalf("protocol changed: %+v", loaded.Protocol)
	}
	back, err := loaded.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(tabs.Cells) {
		t.Fatalf("cell count %d", len(back.Cells))
	}
	for i, c := range tabs.Cells {
		b := back.Cells[i]
		if c.Class != b.Class {
			t.Fatal("class changed")
		}
		if math.Abs(c.CarbonGap.Mean-b.CarbonGap.Mean) > 1e-12 {
			t.Fatalf("carbon gap mean changed: %v vs %v", c.CarbonGap.Mean, b.CarbonGap.Mean)
		}
		if math.Abs(c.CobraF.Mean-b.CobraF.Mean) > 1e-12 {
			t.Fatal("cobra F mean changed")
		}
		if c.PGap != b.PGap {
			t.Fatal("p-value changed")
		}
	}
	// Renderers must produce identical tables from loaded data.
	if tabs.TableIII() != back.TableIII() {
		t.Fatal("Table III differs after round trip")
	}
	if tabs.TableIV() != back.TableIV() {
		t.Fatal("Table IV differs after round trip")
	}
	// Figures from loaded curves match too.
	f4a, f5a := tabs.Cells[0].Figures(10)
	f4b, f5b := back.Cells[0].Figures(10)
	for i := range f4a.UL.Y {
		if f4a.UL.Y[i] != f4b.UL.Y[i] || f5a.Gap.Y[i] != f5b.Gap.Y[i] {
			t.Fatal("figure curves differ after round trip")
		}
	}
}

func TestLoadReportErrors(t *testing.T) {
	if _, err := LoadReport(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	empty := &Report{Cells: []CellReport{{N: 10, M: 2}}}
	if _, err := empty.Tables(); err == nil {
		t.Fatal("empty cell accepted")
	}
}

func TestReportClassesPreserved(t *testing.T) {
	rep := &Report{Cells: []CellReport{{
		N: 100, M: 5,
		Carbon: []RunReport{{GapPct: 1, Revenue: 10}},
		Cobra:  []RunReport{{GapPct: 9, Revenue: 20}},
	}}}
	tabs, err := rep.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if tabs.Cells[0].Class != (orlib.Class{N: 100, M: 5}) {
		t.Fatalf("class %v", tabs.Cells[0].Class)
	}
	if tabs.Cells[0].CarbonGap.Mean != 1 || tabs.Cells[0].CobraGap.Mean != 9 {
		t.Fatal("summaries wrong")
	}
}
