package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"carbon/internal/span"
)

// APIHandler exposes the manager over HTTP:
//
//	POST   /v1/jobs            submit a JobSpec, returns 201 + Status
//	GET    /v1/jobs            list every job
//	GET    /v1/jobs/{id}       status (live GenStats while running)
//	GET    /v1/jobs/{id}/result final ResultRecord (409 until finished)
//	DELETE /v1/jobs/{id}       cancel / withdraw / delete the record
//
// Typed manager errors map onto status codes: ErrQueueFull → 429,
// ErrNotFound → 404, ErrClosed → 503, ErrNotFinished → 409, a spec
// validation failure → 400.
func APIHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// W3C trace-context propagation: adopt a valid traceparent header
		// as the job's parent (a malformed one is dropped, per spec — the
		// job roots a fresh trace instead). The response carries the
		// job's own root context, so the caller can hand it to carbonstat
		// or link it from its tracing system.
		if spec.TraceParent == "" {
			if tp := r.Header.Get("traceparent"); tp != "" {
				if _, perr := span.ParseTraceParent(tp); perr == nil {
					spec.TraceParent = tp
				}
			}
		}
		st, err := m.Submit(spec)
		if err != nil {
			httpError(w, submitCode(err), err)
			return
		}
		if st.Spec.TraceParent != "" {
			w.Header().Set("Traceparent", st.Spec.TraceParent)
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if st.Spec.TraceParent != "" {
			w.Header().Set("Traceparent", st.Spec.TraceParent)
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		rec, err := m.Result(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotFinished):
			httpError(w, http.StatusConflict, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, rec)
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "canceled"})
	})
	return mux
}

func submitCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
