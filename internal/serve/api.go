package serve

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"carbon/internal/span"
)

// RestoreRequest is the body of POST /v1/jobs/restore: a job spec plus
// an optional base64-encoded checkpoint envelope to resume from. The
// cluster router uses it to move a dead worker's job — with its last
// clean checkpoint — onto a survivor.
type RestoreRequest struct {
	Spec          JobSpec `json:"spec"`
	CheckpointB64 string  `json:"checkpoint_b64,omitempty"`
}

// APIHandler exposes the manager over HTTP:
//
//	POST   /v1/jobs            submit a JobSpec, returns 201 + Status
//	POST   /v1/jobs/restore    submit a spec plus a seed checkpoint (cluster failover)
//	GET    /v1/jobs            list every job
//	GET    /v1/jobs/{id}       status (live GenStats while running)
//	GET    /v1/jobs/{id}/events live SSE stream (Last-Event-ID resume, see ServeEvents)
//	GET    /v1/jobs/{id}/result final ResultRecord (409 until finished)
//	GET    /v1/jobs/{id}/checkpoint latest clean checkpoint envelope (404 until one exists)
//	DELETE /v1/jobs/{id}       cancel / withdraw / delete the record
//	GET    /v1/healthz         load snapshot (queue depth, running jobs)
//
// Typed manager errors map onto status codes: ErrQueueFull → 429 (with
// a Retry-After hint and the current queue depth in the body, so
// callers — and a cluster router's admission layer — can back off
// intelligently), ErrNotFound → 404, ErrClosed → 503, ErrNotFinished →
// 409, a spec validation failure → 400.
func APIHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	submit := func(w http.ResponseWriter, spec JobSpec, r *http.Request, ckpt []byte) {
		// W3C trace-context propagation: adopt a valid traceparent header
		// as the job's parent (a malformed one is dropped, per spec — the
		// job roots a fresh trace instead). The response carries the
		// job's own root context, so the caller can hand it to carbonstat
		// or link it from its tracing system.
		if spec.TraceParent == "" {
			if tp := r.Header.Get("traceparent"); tp != "" {
				if _, perr := span.ParseTraceParent(tp); perr == nil {
					spec.TraceParent = tp
				}
			}
		}
		st, err := m.SubmitWithCheckpoint(spec, ckpt)
		if err != nil {
			submitError(w, m, err)
			return
		}
		if st.Spec.TraceParent != "" {
			w.Header().Set("Traceparent", st.Spec.TraceParent)
		}
		writeJSON(w, http.StatusCreated, st)
	}
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		submit(w, spec, r, nil)
	})
	mux.HandleFunc("POST /v1/jobs/restore", func(w http.ResponseWriter, r *http.Request) {
		var req RestoreRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var ckpt []byte
		if req.CheckpointB64 != "" {
			b, err := base64.StdEncoding.DecodeString(req.CheckpointB64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("serve: checkpoint_b64: %w", err))
				return
			}
			ckpt = b
		}
		submit(w, req.Spec, r, ckpt)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Health())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		b, err := m.CheckpointBytes(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if st.Spec.TraceParent != "" {
			w.Header().Set("Traceparent", st.Spec.TraceParent)
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		ServeEvents(m, w, r, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		rec, err := m.Result(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrNotFound):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotFinished):
			httpError(w, http.StatusConflict, err)
		case err != nil:
			httpError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, rec)
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.Cancel(id); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "canceled"})
	})
	return mux
}

func submitCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// submitError maps a submission failure onto its status code. A full
// queue additionally carries a Retry-After hint and the live queue
// numbers in the body, so a backed-off client (or the fleet router)
// knows both when to come back and how far behind the worker is.
func submitError(w http.ResponseWriter, m *Manager, err error) {
	code := submitCode(err)
	if code != http.StatusTooManyRequests {
		httpError(w, code, err)
		return
	}
	h := m.Health()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, code, map[string]any{
		"error":       err.Error(),
		"queue_depth": h.QueueDepth,
		"queue_cap":   h.QueueCap,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
