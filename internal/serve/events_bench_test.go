package serve

import (
	"context"
	"testing"

	"carbon/internal/core"
	"carbon/internal/telemetry"
)

// BenchmarkStepWithSubscribers is core's BenchmarkEngineStep (same
// market, same config) with the live-event fan-out attached: every
// generation is published into a bounded ring with four SSE-style
// subscribers draining concurrently. The acceptance gate is staying
// within ~2% of the bare engine step — publish is one mutex'd ring
// write and four non-blocking wakes, nothing more.
func BenchmarkStepWithSubscribers(b *testing.B) {
	spec := JobSpec{
		N: 60, M: 5, Instance: 3,
		Seed: 1, Pop: 16, ULEvals: 1 << 30, LLEvals: 1 << 30,
		PreySample: 2, Workers: 1,
	}
	spec = spec.withDefaults()
	mk, err := spec.Market()
	if err != nil {
		b.Fatal(err)
	}
	cfg := spec.Config()
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg

	l := NewEventRing(256, reg.Counter("serve.events_dropped"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const subscribers = 4
	done := make(chan struct{}, subscribers)
	for i := 0; i < subscribers; i++ {
		sub := l.Subscribe(0)
		go func() {
			defer func() { done <- struct{}{} }()
			defer sub.Close()
			for {
				if _, _, err := sub.Next(ctx); err != nil {
					return
				}
			}
		}()
	}
	cfg.Observer = core.FuncObserver{Generation: func(gs core.GenStats) {
		l.Publish(Event{Job: "bench", Type: EventGen, Gen: &gs})
	}}

	e, err := core.NewEngine(mk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Step() {
			b.Fatal(e.Err())
		}
	}
	b.StopTimer()
	cancel()
	l.Close()
	for i := 0; i < subscribers; i++ {
		<-done
	}
	solves := reg.Counter("bcpop.lp_solves").Load()
	b.ReportMetric(float64(solves)/float64(b.N), "lp_solves/gen")
}
