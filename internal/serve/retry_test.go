package serve

import (
	"context"
	"errors"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"carbon/internal/fault"
	"carbon/internal/telemetry"
)

// TestRetryRecoversBitIdentical is the tentpole's serve-layer contract:
// an LP outage degrades one attempt, the retry resumes from the last
// clean checkpoint, and the final result is bit-identical to a run that
// never saw a fault — retries absorb the outage instead of publishing a
// degraded answer.
func TestRetryRecoversBitIdentical(t *testing.T) {
	reg := telemetry.NewRegistry()
	// The window opens after generation 1's solve wave and fires once;
	// by the retry it is spent, so attempt 2 runs clean.
	inj := fault.New(1)
	inj.Site(fault.SiteLPSolve, fault.Rule{Every: 1, After: 20, Limit: 1})
	m := newTestManager(t, Options{
		CheckpointEvery: 1,
		MaxAttempts:     3,
		RetryBackoff:    time.Millisecond,
		Fault:           inj,
		Metrics:         reg,
	})
	spec := tinySpec(11)
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.Attempts != 2 {
		t.Fatalf("job finished after %d attempts, want 2", done.Attempts)
	}
	if got := reg.Counter("serve.retries").Load(); got != 1 {
		t.Fatalf("serve.retries = %d, want 1", got)
	}
	if _, fired := inj.Lookup(fault.SiteLPSolve).Stats(); fired != 1 {
		t.Fatalf("fault site fired %d times — the test exercised nothing", fired)
	}
	rec, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, rec, reference(t, spec))
}

// TestDeadLetterAfterMaxAttempts: a permanent outage exhausts the
// attempt budget and the job is dead-lettered — terminal, attempts
// reported, error preserved — and a restarted manager recovers it as
// dead instead of retrying forever or forgetting it.
func TestDeadLetterAfterMaxAttempts(t *testing.T) {
	spool := t.TempDir()
	reg := telemetry.NewRegistry()
	inj := fault.New(1)
	inj.Site(fault.SiteLPSolve, fault.Rule{Every: 1}) // every solve fails
	m1, err := NewManager(Options{
		SpoolDir:     spool,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		Fault:        inj,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(tinySpec(13))
	if err != nil {
		t.Fatal(err)
	}
	dead := waitState(t, m1, st.ID, StateDead)
	if dead.Attempts != 3 {
		t.Fatalf("dead job reports %d attempts, want 3", dead.Attempts)
	}
	if !strings.Contains(dead.Error, "fault") {
		t.Fatalf("dead job error %q does not name the fault", dead.Error)
	}
	if got := reg.Counter("serve.jobs_dead").Load(); got != 1 {
		t.Fatalf("serve.jobs_dead = %d, want 1", got)
	}
	if _, err := m1.Result(st.ID); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("Result on a dead job = %v, want ErrNotFinished", err)
	}
	// Spec and dead marker stay; no stale checkpoint.
	for _, p := range []string{m1.specPath(st.ID), m1.deadPath(st.ID)} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("dead job lost its spool record %s: %v", p, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart without fault injection: the job must come back dead with
	// its attempt count, not silently re-run.
	m2 := newTestManager(t, Options{SpoolDir: spool})
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDead || got.Attempts != 3 || got.Error == "" {
		t.Fatalf("recovered dead job: state %s, attempts %d, error %q", got.State, got.Attempts, got.Error)
	}
	// DELETE on a dead job clears every trace.
	if err := m2.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{m2.specPath(st.ID), m2.deadPath(st.ID)} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("canceled dead job left %s behind", p)
		}
	}
}

// TestTornCheckpointDiscarded: a checkpoint torn by a crash mid-write
// is quarantined and the job re-runs from scratch — to the exact
// fault-free result — instead of wedging on the corrupt file.
func TestTornCheckpointDiscarded(t *testing.T) {
	spool := t.TempDir()
	spec := tinySpec(17).withDefaults()
	id := "j000001"
	if err := writeJSONAtomic(spool+"/"+id+".job.json", spec); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spool+"/"+id+".ckpt.json", []byte(`{"v":1,"prey":[[0.2,`), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := newTestManager(t, Options{SpoolDir: spool, Metrics: reg})
	done := waitState(t, m, id, StateDone)
	if done.Resumed {
		t.Fatal("job claims to have resumed from a torn checkpoint")
	}
	if got := reg.Counter("serve.checkpoints_discarded").Load(); got != 1 {
		t.Fatalf("serve.checkpoints_discarded = %d, want 1", got)
	}
	if _, err := os.Stat(spool + "/" + id + ".ckpt.json.corrupt"); err != nil {
		t.Fatalf("torn checkpoint not quarantined: %v", err)
	}
	rec, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, rec, reference(t, spec))
}

// TestTornSpecQuarantinedOnRecovery: one mangled spec must not hold the
// whole spool hostage — it is set aside, healthy neighbors recover, and
// fresh IDs stay clear of the quarantined one.
func TestTornSpecQuarantinedOnRecovery(t *testing.T) {
	spool := t.TempDir()
	if err := os.WriteFile(spool+"/j000007.job.json", []byte(`{"n":60,"m":5,"se`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := tinySpec(19).withDefaults()
	if err := writeJSONAtomic(spool+"/j000002.job.json", good); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Options{SpoolDir: spool})
	if _, err := m.Get("j000007"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt job recovered: %v", err)
	}
	if _, err := os.Stat(spool + "/j000007.job.json.corrupt"); err != nil {
		t.Fatalf("corrupt spec not quarantined: %v", err)
	}
	waitState(t, m, "j000002", StateDone)
	// The corrupt entry still burned its ID.
	st, err := m.Submit(tinySpec(20))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000008" {
		t.Fatalf("fresh ID %s collides with the quarantined range", st.ID)
	}
}

// TestTornSubmitSurfacesError: a spool write that fails mid-Submit is
// reported to the caller and leaves no half-registered job behind.
func TestTornSubmitSurfacesError(t *testing.T) {
	inj := fault.New(1)
	inj.Site(fault.SiteSpoolWrite, fault.Rule{Every: 1, Limit: 1})
	m := newTestManager(t, Options{Fault: inj})
	_, err := m.Submit(tinySpec(23))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Submit over a torn spool write = %v, want the injected fault", err)
	}
	if got := m.List(); len(got) != 0 {
		t.Fatalf("failed submit left a registered job: %+v", got)
	}
	// The window is spent; the next submission goes through.
	st, err := m.Submit(tinySpec(23))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
}

// TestAttemptTimeoutDeadLetters: attempts bounded by AttemptTimeout are
// retried (unlike the spec deadline, which is a spent budget), and a
// job that can never beat the bound dies with its attempts counted.
func TestAttemptTimeoutDeadLetters(t *testing.T) {
	m := newTestManager(t, Options{
		CheckpointEvery: -1, // no checkpoints: each attempt restarts from scratch
		MaxAttempts:     2,
		RetryBackoff:    time.Millisecond,
		AttemptTimeout:  20 * time.Millisecond,
	})
	st, err := m.Submit(longSpec(25))
	if err != nil {
		t.Fatal(err)
	}
	dead := waitState(t, m, st.ID, StateDead)
	if dead.Attempts != 2 {
		t.Fatalf("dead job reports %d attempts, want 2", dead.Attempts)
	}
	if !strings.Contains(dead.Error, "attempt") {
		t.Fatalf("error %q does not name the attempt timeout", dead.Error)
	}
}

// TestCancelDuringBackoff: a job parked between attempts is still
// cancelable — the backoff wait listens on the same cancel cause as the
// engine loop.
func TestCancelDuringBackoff(t *testing.T) {
	inj := fault.New(1)
	inj.Site(fault.SiteLPSolve, fault.Rule{Every: 1})
	m := newTestManager(t, Options{
		MaxAttempts:  3,
		RetryBackoff: time.Hour, // parked until canceled
		Fault:        inj,
	})
	st, err := m.Submit(tinySpec(29))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first attempt to fail", func() bool {
		got, gerr := m.Get(st.ID)
		return gerr == nil && got.Attempts >= 1
	})
	if err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateCanceled)
}

// TestSubmitCloseRaceStatusCodes pins the API's backpressure contract
// while Close races Submit: every rejection is typed — queue-full maps
// to 429, draining/closed to 503 — and no race window yields a panic or
// an untyped error.
func TestSubmitCloseRaceStatusCodes(t *testing.T) {
	for round := 0; round < 8; round++ {
		m, err := NewManager(Options{SpoolDir: t.TempDir(), Workers: 1, QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					_, err := m.Submit(longSpec(uint64(200 + c*10 + i)))
					switch {
					case err == nil:
					case errors.Is(err, ErrQueueFull):
						if code := submitCode(err); code != http.StatusTooManyRequests {
							t.Errorf("queue-full mapped to %d, want 429", code)
						}
					case errors.Is(err, ErrClosed):
						if code := submitCode(err); code != http.StatusServiceUnavailable {
							t.Errorf("closed mapped to %d, want 503", code)
						}
					default:
						t.Errorf("untyped submit error during close race: %v", err)
					}
				}
			}(c)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := m.Close(ctx); err != nil {
				t.Error(err)
			}
		}()
		close(start)
		wg.Wait()
		// After the dust settles the manager is closed: the mapping is
		// exactly 503, deterministically.
		if _, err := m.Submit(tinySpec(1)); !errors.Is(err, ErrClosed) || submitCode(err) != http.StatusServiceUnavailable {
			t.Fatalf("post-close submit: err %v, code %d", err, submitCode(err))
		}
	}
}
