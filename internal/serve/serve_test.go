package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"carbon/internal/core"
)

// tinySpec is a job small enough to finish in well under a second:
// 10 generations on the 60x5 covering class.
func tinySpec(seed uint64) JobSpec {
	return JobSpec{
		N: 60, M: 5, Instance: 3,
		Seed: seed, Pop: 16, ULEvals: 160, LLEvals: 480,
		PreySample: 2, Workers: 1,
	}
}

// longSpec runs for a few hundred generations — long enough that tests
// can reliably interrupt it mid-flight.
func longSpec(seed uint64) JobSpec {
	s := tinySpec(seed)
	s.ULEvals, s.LLEvals = 16*400, 32*400
	return s
}

// reference runs the spec's configuration uninterrupted in-process: the
// ground truth every managed run must match bit for bit.
func reference(t testing.TB, spec JobSpec) *core.Result {
	t.Helper()
	spec = spec.withDefaults()
	mk, err := spec.Market()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(mk, spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newTestManager(t testing.TB, opts Options) *Manager {
	t.Helper()
	if opts.SpoolDir == "" {
		opts.SpoolDir = t.TempDir()
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitState(t testing.TB, m *Manager, id string, want State) Status {
	t.Helper()
	var st Status
	waitFor(t, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		var err error
		st, err = m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() && st.State != want {
			t.Fatalf("job %s reached terminal state %s (err %q), want %s", id, st.State, st.Error, want)
		}
		return st.State == want
	})
	return st
}

// assertMatchesReference requires the managed run to be bit-identical to
// the uninterrupted in-process run: same best pairing, same budgets
// spent, same convergence curves.
func assertMatchesReference(t *testing.T, rec *ResultRecord, want *core.Result) {
	t.Helper()
	if rec.Gens != want.Gens || rec.ULEvals != want.ULEvals || rec.LLEvals != want.LLEvals {
		t.Fatalf("budget trace diverged: got %d gens %d/%d evals, want %d gens %d/%d",
			rec.Gens, rec.ULEvals, rec.LLEvals, want.Gens, want.ULEvals, want.LLEvals)
	}
	if rec.BestRevenue != want.Best.Revenue || rec.BestGapPct != want.Best.GapPct ||
		rec.BestTree != want.Best.TreeStr {
		t.Fatalf("best pairing diverged:\n got  (%v, %q, %v)\n want (%v, %q, %v)",
			rec.BestRevenue, rec.BestTree, rec.BestGapPct,
			want.Best.Revenue, want.Best.TreeStr, want.Best.GapPct)
	}
	if !reflect.DeepEqual(rec.BestPrice, want.Best.Price) {
		t.Fatal("best price vector diverged")
	}
	if !reflect.DeepEqual(rec.ULCurveX, want.ULCurve.X) || !reflect.DeepEqual(rec.ULCurveY, want.ULCurve.Y) ||
		!reflect.DeepEqual(rec.GapCurveX, want.GapCurve.X) || !reflect.DeepEqual(rec.GapCurveY, want.GapCurve.Y) {
		t.Fatal("convergence curves diverged")
	}
}

func TestJobLifecycleAndExactResult(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	spec := tinySpec(11)
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("fresh job in state %s", st.State)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.Latest == nil || done.Latest.Gen != done.Gens {
		t.Fatalf("missing or stale live stats: %+v", done.Latest)
	}
	rec, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, rec, reference(t, spec))

	// The spool holds spec+result, no checkpoint.
	if _, err := os.Stat(filepath.Join(m.opts.SpoolDir, st.ID+".result.json")); err != nil {
		t.Fatalf("result not spooled: %v", err)
	}
	if _, err := os.Stat(m.ckptPath(st.ID)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up: %v", err)
	}
}

func TestResultBeforeFinishIsTyped(t *testing.T) {
	m := newTestManager(t, Options{})
	st, err := m.Submit(longSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(st.ID); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("got %v, want ErrNotFinished", err)
	}
	if _, err := m.Result("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateCanceled)
}

func TestQueueBackpressure(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 1})
	running, err := m.Submit(longSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	if _, err := m.Submit(longSpec(6)); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := m.Submit(longSpec(7)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	// Canceling both frees the worker and the queue slot quickly.
	for _, st := range m.List() {
		if err := m.Cancel(st.ID); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCancelRunningAndQueued(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 4})
	run, err := m.Submit(longSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(longSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, run.ID, StateRunning)
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Get(queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job in state %s after cancel", st.State)
	}
	if err := m.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, run.ID, StateCanceled)
	// Canceled jobs leave nothing behind to resurrect.
	for _, id := range []string{run.ID, queued.ID} {
		if _, err := os.Stat(m.specPath(id)); !os.IsNotExist(err) {
			t.Fatalf("spool entry for canceled job %s survives", id)
		}
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	m := newTestManager(t, Options{})
	spec := longSpec(10)
	spec.TimeoutSec = 0.05
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, st.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("failed job carries no error")
	}
	if _, err := os.Stat(m.specPath(st.ID)); !os.IsNotExist(err) {
		t.Fatal("deadline-failed job left a spec to be retried on restart")
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	m := newTestManager(t, Options{})
	bad := tinySpec(1)
	bad.Pop = 1
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("accepted pop=1")
	}
	if got := m.List(); len(got) != 0 {
		t.Fatalf("rejected job registered: %+v", got)
	}
}

// TestDrainResumeIsBitIdentical is the serve-layer determinism
// guarantee: a job drained mid-run by Close and resumed by a fresh
// manager on the same spool finishes with exactly the bits of an
// uninterrupted run.
func TestDrainResumeIsBitIdentical(t *testing.T) {
	spool := t.TempDir()
	spec := tinySpec(21)
	spec.ULEvals, spec.LLEvals = 16*40, 32*40 // 40 generations

	m1, err := NewManager(Options{SpoolDir: spool, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a few generations", func() bool {
		got, gerr := m1.Get(st.ID)
		if gerr != nil {
			t.Fatal(gerr)
		}
		if got.State.Terminal() {
			t.Fatalf("job finished before drain (state %s) — budgets too small", got.State)
		}
		return got.Gens >= 3
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".job.json", ".ckpt.json"} {
		if _, err := os.Stat(filepath.Join(spool, st.ID+suffix)); err != nil {
			t.Fatalf("drain left no %s: %v", suffix, err)
		}
	}

	// A second manager on the same spool must pick the job up and finish
	// it from the checkpoint.
	m2 := newTestManager(t, Options{SpoolDir: spool, CheckpointEvery: 1})
	resumed := waitState(t, m2, st.ID, StateDone)
	if !resumed.Resumed {
		t.Fatal("recovered job did not report Resumed")
	}
	rec, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, rec, reference(t, spec))
}

// TestRecoveryKeepsDoneJobsQueryable: a restart must not forget finished
// work — the result file re-registers the job as done.
func TestRecoveryKeepsDoneJobsQueryable(t *testing.T) {
	spool := t.TempDir()
	m1, err := NewManager(Options{SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec(31)
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{SpoolDir: spool})
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("recovered finished job in state %s", got.State)
	}
	rec, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, rec, reference(t, spec))
	// New submissions must not collide with recovered IDs.
	st2, err := m2.Submit(tinySpec(32))
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("ID collision after recovery: %s", st2.ID)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	m, err := NewManager(Options{SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tinySpec(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClients hammers every manager entry point from many
// goroutines; run under -race this is the data-race gate for the
// subsystem.
func TestConcurrentClients(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2, QueueDepth: 64})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				st, err := m.Submit(tinySpec(uint64(100 + c*10 + i)))
				if err != nil {
					if errors.Is(err, ErrQueueFull) {
						continue
					}
					t.Error(err)
					return
				}
				mu.Lock()
				ids = append(ids, st.ID)
				mu.Unlock()
				_, _ = m.Get(st.ID)
				_ = m.List()
				_, _ = m.Result(st.ID)
				if i%2 == 1 {
					_ = m.Cancel(st.ID)
				}
			}
		}(c)
	}
	wg.Wait()
	mu.Lock()
	all := append([]string(nil), ids...)
	mu.Unlock()
	waitFor(t, "all jobs to settle", func() bool {
		for _, id := range all {
			st, err := m.Get(id)
			if err != nil {
				continue // deleted by a cancel on a terminal job
			}
			if !st.State.Terminal() {
				return false
			}
		}
		return true
	})
}
