package serve

import (
	"strings"
	"testing"
)

func TestSpecMapsSurrogateKnobs(t *testing.T) {
	spec := tinySpec(5)
	spec.Surrogate = true
	spec.SurrogateTopK = 8
	spec.SurrogateWarmup = 3

	norm := spec.Normalize()
	cfg := norm.Config()
	if !cfg.Surrogate.Enabled {
		t.Fatal("surrogate not enabled in engine config")
	}
	if cfg.Surrogate.TopK != 8 || cfg.Surrogate.Warmup != 3 {
		t.Fatalf("knobs lost in mapping: topk=%d warmup=%d", cfg.Surrogate.TopK, cfg.Surrogate.Warmup)
	}

	// The zero spec keeps the exact golden path.
	plain := tinySpec(5).Normalize()
	if plain.Config().Surrogate.Enabled {
		t.Fatal("plain spec enabled the surrogate")
	}

	bad := tinySpec(5).Normalize()
	bad.SurrogateTopK = -1
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "surrogate_topk") {
		t.Fatalf("negative topk accepted: %v", err)
	}
	bad = tinySpec(5).Normalize()
	bad.SurrogateWarmup = -2
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "surrogate_warmup") {
		t.Fatalf("negative warmup accepted: %v", err)
	}
}

// TestForceExactStripsSurrogate proves the operator escape hatch: a
// ForceExact manager clears the surrogate knobs before spooling, and the
// job's result is bit-identical to the pre-surrogate exact engine.
func TestForceExactStripsSurrogate(t *testing.T) {
	m := newTestManager(t, Options{ForceExact: true})
	spec := tinySpec(11)
	spec.Surrogate = true
	spec.SurrogateTopK = 4

	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Surrogate || st.Spec.SurrogateTopK != 0 || st.Spec.SurrogateWarmup != 0 {
		t.Fatalf("knobs survived ForceExact: %+v", st.Spec)
	}
	waitState(t, m, st.ID, StateDone)
	rec, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, rec, reference(t, tinySpec(11)))
}
