package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"carbon/internal/checkpoint"
	"carbon/internal/core"
	"carbon/internal/fault"
	"carbon/internal/par"
	"carbon/internal/rng"
	"carbon/internal/span"
	"carbon/internal/telemetry"
)

// Typed errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is the backpressure signal: the FIFO queue is at
	// Options.QueueDepth and the submission was rejected, not blocked.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("serve: no such job")
	// ErrClosed rejects submissions to a draining or closed manager.
	ErrClosed = errors.New("serve: manager closed")
	// ErrNotFinished rejects a result request for a job still in flight.
	ErrNotFinished = errors.New("serve: job not finished")

	// errDrained and errCanceledByUser classify why a running job's loop
	// stopped early (see runJob).
	errDrained        = errors.New("serve: manager draining")
	errCanceledByUser = errors.New("serve: canceled by request")

	// errSpecDeadline marks the job's own TimeoutSec budget expiring —
	// the job proved it cannot finish in its allotted time, so retrying
	// it would only burn the budget again. Non-retryable.
	errSpecDeadline = errors.New("serve: job deadline exceeded")
	// errAttemptTimeout marks one attempt outliving Options.AttemptTimeout
	// (a hung solver, a stalled disk). The job itself may be fine, so the
	// attempt is retried from its last clean checkpoint.
	errAttemptTimeout = errors.New("serve: attempt timed out")
)

// retryable classifies an execute error: drain and cancel are lifecycle
// transitions, the spec deadline is a spent budget, everything else
// (evaluation faults, degraded engines, spool I/O, attempt timeouts) is
// presumed transient and worth another attempt.
func retryable(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, errDrained),
		errors.Is(err, errCanceledByUser),
		errors.Is(err, errSpecDeadline):
		return false
	}
	return true
}

// Options configures a Manager.
type Options struct {
	// Workers is the number of jobs run concurrently (default 1). This is
	// job-level parallelism; each job's evaluation parallelism is its
	// spec's Workers field.
	Workers int
	// QueueDepth bounds the FIFO queue of jobs waiting for a worker
	// (default 16). Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// SpoolDir is where specs, checkpoints and results live. Required.
	SpoolDir string
	// CheckpointEvery writes a checkpoint every N generations while a job
	// runs (default 25; <0 disables periodic checkpoints — drain still
	// checkpoints).
	CheckpointEvery int
	// Metrics, when non-nil, aggregates every job's engine instruments
	// into one registry (served by cmd/carbond next to the job API).
	Metrics *telemetry.Registry

	// Spans enables per-job span tracing: each job appends its spans to
	// <id>.spans.jsonl next to its other spool entries (surviving crash
	// and restart — incarnations append to the same file and trace), and
	// per-kind span-duration histograms land in Metrics under the "span"
	// prefix. Analyze with carbonstat -spans.
	Spans bool

	// MaxAttempts bounds how many times a job is executed before it is
	// dead-lettered (default 3). Each retry resumes from the job's last
	// clean checkpoint, so completed generations are never re-bought.
	MaxAttempts int
	// RetryBackoff is the delay before attempt 2 (default 250ms); each
	// further retry doubles it, capped at MaxBackoff, with ±50% jitter.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 10s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds a single attempt's wall clock (0 = no bound).
	// Unlike the spec's TimeoutSec — the job's total budget, which is
	// never retried — an attempt timeout is retryable.
	AttemptTimeout time.Duration
	// RetrySeed seeds the jitter stream (default 1), keeping backoff
	// sequences reproducible in tests.
	RetrySeed uint64

	// EventBuffer bounds each job's live-event ring (default 256; <0 is
	// clamped to 1). A subscriber that falls more than EventBuffer events
	// behind skips forward and the gap lands in serve.events_dropped —
	// the publisher never blocks on a consumer.
	EventBuffer int

	// ForceExact strips the surrogate knobs from every submitted spec, so
	// all jobs run the exact-LP golden path regardless of what callers
	// ask for. An operator escape hatch: results published from a forced
	// deployment are reproducible by the pre-surrogate engine
	// bit-for-bit. Stripping happens before the spec is spooled, so a
	// restart of a non-forced manager does not resurrect the knobs.
	ForceExact bool

	// Fault, when non-nil, arms fault-injection sites across the manager:
	// lp.solve inside every job's engine, checkpoint.write and spool.write
	// on the manager's own I/O. Testing and chaos drills only.
	Fault *fault.Injector
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 16
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 25
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 10 * time.Second
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.EventBuffer == 0 {
		o.EventBuffer = 256
	}
	return o
}

// Manager owns the job table, the FIFO queue and the worker pool. All
// methods are safe for concurrent use.
type Manager struct {
	opts Options

	pool  *par.Pool
	queue chan *job
	sem   chan struct{} // caps jobs handed to the pool at opts.Workers

	draining chan struct{} // closed by Close: running jobs park themselves

	mu     sync.Mutex
	jobs   map[string]*job
	seq    int
	closed bool

	// Identity served on /v1/healthz: fixed at construction, read-only
	// after (no locking needed).
	startTime   time.Time
	incarnation string
	build       Build

	// retryRng drives backoff jitter; its own mutex keeps the retry path
	// off the job-table lock.
	retryMu  sync.Mutex
	retryRng *rng.Rand

	// Armed fault sites (nil when Options.Fault is nil or lacks the site).
	lpFault    *fault.Site
	ckptFault  *fault.Site
	spoolFault *fault.Site

	metRetries *telemetry.Counter // serve.retries
	metDead    *telemetry.Counter // serve.jobs_dead
	metDiscard *telemetry.Counter // serve.checkpoints_discarded
	metSpanDrp *telemetry.Counter // span.dropped_writes
	metEvtDrop *telemetry.Counter // serve.events_dropped

	// histExp feeds every job's ended spans into shared duration
	// histograms (span.<name>_ms in Metrics); nil when tracing is off or
	// no registry was given.
	histExp *span.HistExporter

	dispatcherDone chan struct{}
}

// NewManager creates the spool directory if needed, recovers every
// unfinished job found in it (finished ones are loaded as done so their
// results stay queryable), and starts the worker pool.
func NewManager(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.SpoolDir == "" {
		return nil, errors.New("serve: Options.SpoolDir is required")
	}
	if opts.Workers < 1 || opts.QueueDepth < 1 {
		return nil, errors.New("serve: Workers and QueueDepth must be positive")
	}
	if err := os.MkdirAll(opts.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &Manager{
		opts:           opts,
		pool:           par.NewPool(opts.Workers),
		sem:            make(chan struct{}, opts.Workers),
		draining:       make(chan struct{}),
		jobs:           make(map[string]*job),
		startTime:      start,
		incarnation:    fmt.Sprintf("%d-%x", os.Getpid(), start.UnixNano()),
		build:          readBuild(),
		retryRng:       rng.New(opts.RetrySeed),
		lpFault:        opts.Fault.Lookup(fault.SiteLPSolve),
		ckptFault:      opts.Fault.Lookup(fault.SiteCheckpoint),
		spoolFault:     opts.Fault.Lookup(fault.SiteSpoolWrite),
		dispatcherDone: make(chan struct{}),
	}
	if reg := opts.Metrics; reg != nil {
		m.metRetries = reg.Counter("serve.retries")
		m.metDead = reg.Counter("serve.jobs_dead")
		m.metDiscard = reg.Counter("serve.checkpoints_discarded")
		m.metSpanDrp = reg.Counter("span.dropped_writes")
		m.metEvtDrop = reg.Counter("serve.events_dropped")
	}
	if opts.Spans {
		m.histExp = span.NewHistExporter(opts.Metrics, "span")
	}
	recovered, err := m.recover()
	if err != nil {
		return nil, err
	}
	// Size the queue so every recovered job fits ahead of QueueDepth new
	// submissions — recovery must never trip its own backpressure.
	m.queue = make(chan *job, opts.QueueDepth+len(recovered))
	for _, j := range recovered {
		m.queue <- j
	}
	go m.dispatch()
	return m, nil
}

// recover scans the spool: a spec with a result is re-registered as
// done; a spec with a dead record is re-registered as dead (attempts
// preserved); a spec with neither becomes a queued job again (runJob
// restores its checkpoint if present). A torn spec — the signature a
// crash mid-spool-write leaves — is quarantined (renamed *.corrupt) and
// skipped rather than failing the whole start: one mangled file must
// not hold every healthy job hostage. Returns the re-queued jobs in ID
// order so recovery preserves rough submission order.
//
// Quarantined artifacts (*.corrupt) and span traces (*.spans.jsonl)
// live in the same directory; they are skipped *explicitly* — not by
// happening to miss the ".job.json" suffix — and any ID they embed is
// burned so a fresh submission can never collide with the leftovers of
// a quarantined job (see TestRecoverHostileSpool).
func (m *Manager) recover() ([]*job, error) {
	entries, err := os.ReadDir(m.opts.SpoolDir)
	if err != nil {
		return nil, err
	}
	var requeue []*job
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		if strings.HasSuffix(name, ".corrupt") || strings.HasSuffix(name, ".spans.jsonl") {
			m.burnSpoolID(name)
			continue
		}
		id, ok := strings.CutSuffix(name, ".job.json")
		if !ok {
			continue
		}
		// Spool entries are always named j%06d; anything else is not ours
		// (a stray file dropped into the spool) and is left untouched.
		var n int
		if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
			continue
		}
		// Keep fresh IDs clear of every recovered one — even a corrupt
		// entry burns its ID, or the next submission would collide with
		// the quarantined files.
		if n > m.seq {
			m.seq = n
		}
		var spec JobSpec
		if err := readJSON(m.specPath(id), &spec); err != nil {
			quarantine(m.specPath(id))
			continue
		}
		j := &job{id: id, spec: spec, state: StateQueued, submitted: time.Now()}
		j.events = NewEventRing(m.opts.EventBuffer, m.metEvtDrop)
		if rec := new(ResultRecord); readJSONQuarantine(m.resultPath(id), rec) {
			j.state = StateDone
			j.result = rec
			j.gens = rec.Gens
		} else if dead := new(DeadRecord); readJSONQuarantine(m.deadPath(id), dead) {
			j.state = StateDead
			j.attempts = dead.Attempts
			j.errMsg = dead.Error
			fin := dead.Finished
			j.finished = &fin
		} else {
			m.reattachSpans(j)
			requeue = append(requeue, j)
		}
		// Seed the recovered job's stream with its current position —
		// events from the previous incarnation are gone with its memory,
		// so subscribers start from this state (terminal states close the
		// stream immediately).
		j.publishState()
		m.jobs[id] = j
	}
	sort.Slice(requeue, func(a, b int) bool { return requeue[a].id < requeue[b].id })
	return requeue, nil
}

// reattachSpans rejoins a recovered job to its pre-crash trace. Submit
// rewrote the spooled spec's TraceParent to the job's own root span, so
// the new incarnation's queue.wait and attempt spans parent into the
// same tree — carbonstat -spans stitches attempts across restarts by
// trace ID. The file exporter appends, so the announce records the dead
// process wrote stay in place.
func (m *Manager) reattachSpans(j *job) {
	if !m.opts.Spans {
		return
	}
	ctx, err := span.ParseTraceParent(j.spec.TraceParent)
	if err != nil {
		return // pre-tracing spool entry: run it untraced rather than fail
	}
	j.spanExp = span.NewFileExporter(m.spanPath(j.id))
	j.spanExp.SetDropCounter(m.metSpanDrp)
	j.tracer = span.New(span.Multi(j.spanExp, m.histExp))
	j.root = ctx
	j.queueSpan = j.tracer.StartRemote(ctx, "queue.wait").
		Kind(span.KindQueue).Attr("recovered", true).Announce()
}

// burnSpoolID advances the ID sequence past any job ID embedded in a
// spool sibling's name ("j000007.ckpt.json.corrupt" burns 7), so fresh
// submissions never reuse an ID that still owns on-disk evidence.
func (m *Manager) burnSpoolID(name string) {
	var n int
	if _, err := fmt.Sscanf(name, "j%d", &n); err == nil && n > m.seq {
		m.seq = n
	}
}

// readJSONQuarantine decodes path into v, quarantining a present-but-
// torn file. Reports whether a valid record was loaded.
func readJSONQuarantine(path string, v any) bool {
	b, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	if err := json.Unmarshal(b, v); err != nil {
		quarantine(path)
		return false
	}
	return true
}

// quarantine moves a corrupt spool artifact aside for post-mortem
// instead of deleting evidence or refusing to start.
func quarantine(path string) {
	_ = os.Rename(path, path+".corrupt")
}

// dispatch feeds queued jobs to the pool, at most opts.Workers in
// flight, preserving FIFO order. The worker slot is acquired before the
// job leaves the queue, so QueueDepth is exactly the number of waiting
// jobs — the dispatcher never parks one in limbo between queue and pool.
// It exits when Close closes the queue.
func (m *Manager) dispatch() {
	defer close(m.dispatcherDone)
	for {
		m.sem <- struct{}{}
		j, ok := <-m.queue
		if !ok {
			<-m.sem
			break
		}
		m.pool.SubmitLabeled(func() {
			defer func() { <-m.sem }()
			m.runJob(j)
		}, "job", j.id)
	}
	m.pool.Close()
}

// Submit validates, spools and enqueues a job. The spec is normalized
// (withDefaults) before anything is written, so the spooled spec — and
// the config fingerprint a resume will check — is self-contained.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	return m.submit(spec, nil)
}

// SubmitWithCheckpoint is Submit with a starting checkpoint: the bytes
// are installed as the job's spooled checkpoint before it is enqueued,
// so its first attempt resumes from that state instead of generation 0.
// This is the cluster failover path — a router re-homing a dead
// worker's job hands the survivor the job's last mirrored checkpoint,
// and the resumed run stays bit-identical to one that never moved (see
// core.Restore). The bytes must decode as a valid checkpoint envelope;
// config drift against the spec is handled like any spooled checkpoint
// (quarantine + fresh start), so a stale mirror costs recomputed
// generations, never correctness.
func (m *Manager) SubmitWithCheckpoint(spec JobSpec, ckpt []byte) (Status, error) {
	if len(ckpt) > 0 {
		st, err := checkpoint.DecodeBytes(ckpt)
		if err != nil {
			return Status{}, fmt.Errorf("serve: seed checkpoint: %w", err)
		}
		if err := st.Validate(); err != nil {
			return Status{}, fmt.Errorf("serve: seed checkpoint: %w", err)
		}
	}
	return m.submit(spec, ckpt)
}

func (m *Manager) submit(spec JobSpec, ckpt []byte) (Status, error) {
	spec = spec.withDefaults()
	if m.opts.ForceExact {
		spec.Surrogate = false
		spec.SurrogateTopK, spec.SurrogateWarmup = 0, 0
	}
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("j%06d", m.seq)
	m.mu.Unlock()

	// The job is built — spans included — before it becomes visible to
	// List or the queue, so its identity fields never race a reader.
	j := &job{id: id, state: StateQueued, submitted: time.Now()}
	j.events = NewEventRing(m.opts.EventBuffer, m.metEvtDrop)
	if m.opts.Spans {
		// The root "job" span opens the trace. A valid caller TraceParent
		// (the API's traceparent header) parents it into the caller's
		// trace; either way the spec spooled below carries the root's own
		// context, so a restarted manager re-joins this trace. Announce
		// writes the open record now — a crash leaves the root open in
		// the file, never absent.
		j.spanExp = span.NewFileExporter(m.spanPath(id))
		j.spanExp.SetDropCounter(m.metSpanDrp)
		j.tracer = span.New(span.Multi(j.spanExp, m.histExp))
		if parent, perr := span.ParseTraceParent(spec.TraceParent); perr == nil {
			j.rootSpan = j.tracer.StartRemote(parent, "job")
		} else {
			j.rootSpan = j.tracer.Start(span.Context{}, "job")
		}
		j.rootSpan.Kind(span.KindCompute).Attr("job", id).Attr("name", spec.Name).Announce()
		j.root = j.rootSpan.Context()
		spec.TraceParent = j.root.TraceParent()
		j.queueSpan = j.tracer.Start(j.root, "queue.wait").Kind(span.KindQueue).Announce()
	}
	j.spec = spec
	discard := func() {
		j.closeSpans()
		_ = os.Remove(m.specPath(id)) // a torn artifact may exist
		_ = os.Remove(m.ckptPath(id))
		_ = os.Remove(m.spanPath(id))
	}

	// Spool the spec before enqueueing: once Submit returns, a crash
	// cannot lose the job.
	if err := m.spoolWrite(m.specPath(id), spec); err != nil {
		discard()
		return Status{}, err
	}
	// A seed checkpoint (cluster failover) lands next to the spec with
	// the same atomic discipline; execute finds it exactly where a
	// periodic checkpoint would have been.
	if len(ckpt) > 0 {
		if err := writeBytesAtomic(m.ckptPath(id), ckpt); err != nil {
			discard()
			return Status{}, err
		}
	}
	// Registration and enqueue happen under one lock so the enqueue
	// cannot race Close closing the channel; it is a non-blocking select,
	// so the lock is never held across a wait.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		discard()
		return Status{}, ErrClosed
	}
	select {
	case m.queue <- j:
		m.jobs[id] = j
		m.mu.Unlock()
		j.publishState() // seq 1: queued
		return j.status(), nil
	default:
		m.mu.Unlock()
		discard()
		return Status{}, ErrQueueFull
	}
}

// Health is the manager's load snapshot — what a cluster router's
// least-loaded and weighted policies consume (GET /v1/healthz). Queue
// depth and running jobs are counted from the job table, so a job
// already popped from the queue but not yet running still shows as
// queued: QueueDepth+Running is exactly the work accepted and unfinished.
type Health struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`

	QueueDepth int `json:"queue_depth"` // jobs accepted but not yet running
	QueueCap   int `json:"queue_cap"`   // Options.QueueDepth
	Running    int `json:"running"`
	Workers    int `json:"workers"` // concurrent job slots (Options.Workers)

	JobsTotal int `json:"jobs_total"` // every job the manager answers for
	Done      int `json:"done"`
	Dead      int `json:"dead"`

	// Identity and liveness — so probes and carbontop stop inferring
	// them from queue depth alone. Incarnation changes every process
	// start (pid + start time, no algorithm RNG involved): a fleet
	// router comparing incarnations across probes detects a worker that
	// crashed and restarted between two healthy responses.
	UptimeSec   float64 `json:"uptime_sec"`
	Incarnation string  `json:"incarnation"`
	ActiveJobs  int     `json:"active_jobs"` // queued + running
	Build       Build   `json:"build"`
}

// Build identifies the serving binary (from runtime/debug.ReadBuildInfo).
type Build struct {
	GoVersion string `json:"go_version,omitempty"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
}

// readBuild snapshots the binary's build info once at manager start.
func readBuild() Build {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return Build{}
	}
	b := Build{GoVersion: bi.GoVersion, Path: bi.Main.Path, Version: bi.Main.Version}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			b.Revision = s.Value
		}
	}
	return b
}

// Health reports the manager's current load and identity.
func (m *Manager) Health() Health {
	m.mu.Lock()
	h := Health{
		OK:          !m.closed,
		Draining:    m.closed,
		QueueCap:    m.opts.QueueDepth,
		Workers:     m.opts.Workers,
		UptimeSec:   time.Since(m.startTime).Seconds(),
		Incarnation: m.incarnation,
		Build:       m.build,
	}
	for _, j := range m.jobs {
		h.JobsTotal++
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			h.QueueDepth++
		case StateRunning:
			h.Running++
		case StateDone:
			h.Done++
		case StateDead:
			h.Dead++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	h.ActiveJobs = h.QueueDepth + h.Running
	return h
}

// ErrNoCheckpoint reports that a job has no usable spooled checkpoint
// (none written yet, or the job already finished and removed it).
var ErrNoCheckpoint = errors.New("serve: no checkpoint")

// CheckpointBytes returns the job's latest spooled checkpoint envelope,
// verified to decode before it crosses any wire — a torn artifact is
// reported as absent, never mirrored. This is what a cluster router
// fetches (GET /v1/jobs/{id}/checkpoint) so a dead worker's jobs can be
// re-homed onto survivors from their last clean state.
func (m *Manager) CheckpointBytes(id string) ([]byte, error) {
	if _, err := m.lookup(id); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(m.ckptPath(id))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("serve: job %s: %w", id, ErrNoCheckpoint)
	}
	if err != nil {
		return nil, err
	}
	if st, derr := checkpoint.DecodeBytes(b); derr != nil || st.Validate() != nil {
		return nil, fmt.Errorf("serve: job %s: torn checkpoint on disk: %w", id, ErrNoCheckpoint)
	}
	return b, nil
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	return j.status(), nil
}

// List returns a snapshot of every job, sorted by ID (submission order).
func (m *Manager) List() []Status {
	m.mu.Lock()
	all := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j)
	}
	m.mu.Unlock()
	out := make([]Status, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Result returns the finished job's summary, or ErrNotFinished while it
// is still queued or running.
func (m *Manager) Result(id string) (*ResultRecord, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		if j.state.Terminal() {
			return nil, fmt.Errorf("serve: job %s %s: %s: %w", id, j.state, j.errMsg, ErrNotFinished)
		}
		return nil, ErrNotFinished
	}
	rec := *j.result
	return &rec, nil
}

// Cancel stops a job. A queued job is withdrawn, a running one is
// interrupted at its next generation boundary; either way its spool
// entries are removed. Canceling a terminal job deletes its record (this
// is DELETE's idempotent cleanup path).
func (m *Manager) Cancel(id string) error {
	j, err := m.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch {
	case j.state == StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errCanceledByUser)
		}
		return nil // runJob finishes the transition and cleans the spool
	case j.state == StateQueued:
		j.state = StateCanceled
		now := time.Now()
		j.finished = &now
		j.mu.Unlock()
		j.publishState()
		j.closeSpans()
	default: // terminal: delete the record entirely
		j.mu.Unlock()
		m.forget(id)
	}
	m.removeSpool(id)
	return nil
}

// Close drains the manager: no new submissions, queued jobs stay spooled
// for the next start, and every running job writes a checkpoint and
// parks at its next generation boundary. The context bounds how long the
// drain may take.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.dispatcherDone
		return nil
	}
	m.closed = true
	close(m.draining)
	close(m.queue)
	m.mu.Unlock()
	select {
	case <-m.dispatcherDone:
		// Every job is parked; release span files still held by jobs the
		// dispatcher never got to (idempotent for the rest).
		m.mu.Lock()
		for _, j := range m.jobs {
			j.closeSpans()
		}
		m.mu.Unlock()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// runJob executes one job end to end: restore-or-create the engine,
// step until the budgets run out, checkpointing periodically, and
// classify any early stop. Retryable failures (evaluation faults,
// degraded engines, spool I/O, attempt timeouts) re-run execute — each
// attempt resumes from the job's last clean checkpoint — with
// exponential backoff between attempts, until Options.MaxAttempts is
// spent and the job is dead-lettered.
func (m *Manager) runJob(j *job) {
	select {
	case <-m.draining:
		return // stays queued; its spooled spec resurrects it next start
	default:
	}
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	now := time.Now()
	j.started = &now
	// One cancel cause covers the whole lifetime — including backoff
	// waits, so Cancel interrupts a job parked between attempts.
	ctx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel(nil)
	j.queueSpan.End() // queue wait is over: a worker owns the job now
	j.publishState()  // running

	var err error
	for {
		j.mu.Lock()
		j.attempts++
		attempt := j.attempts
		j.mu.Unlock()
		// Attempt spans are announced so a SIGKILL mid-attempt leaves the
		// open record behind — the next incarnation's spans join the same
		// trace and the analyzer shows the crashed attempt's extent.
		att := j.childOfRoot("attempt").Kind(span.KindCompute).
			Attr("attempt", attempt).Announce()
		err = m.execute(ctx, j, att)
		if err != nil {
			att.Attr("error", err.Error())
		}
		att.End()
		if !retryable(err) || attempt >= m.opts.MaxAttempts {
			break
		}
		m.metRetries.Inc()
		delay := m.backoffDelay(attempt)
		bsp := j.childOfRoot("backoff").Kind(span.KindBackoff).
			Attr("attempt", attempt).Attr("delay_ms", delay.Milliseconds())
		werr := m.awaitRetry(ctx, delay)
		bsp.End()
		if werr != nil {
			err = werr
			break
		}
	}
	j.mu.Lock()
	j.cancel = nil
	attempts := j.attempts
	j.mu.Unlock()

	switch {
	case err == nil:
		j.setState(StateDone)
	case errors.Is(err, errDrained):
		// Checkpointed; back to the queue (on disk, not in memory — the
		// manager is shutting down).
		j.setState(StateQueued)
	case errors.Is(err, errCanceledByUser):
		j.setState(StateCanceled)
		m.removeSpool(j.id)
	case retryable(err):
		// Every attempt spent. Dead-letter: the spec and a DeadRecord
		// stay in the spool so a restart reports the job as dead with its
		// attempt count — an accepted job is never silently dropped, and
		// never blindly re-run either.
		rec := DeadRecord{ID: j.id, Attempts: attempts, Error: err.Error(), Finished: time.Now()}
		dsp := j.childOfRoot("deadletter").Kind(span.KindIO).Attr("attempts", attempts)
		_ = writeJSONAtomic(m.deadPath(j.id), rec)
		_ = os.Remove(m.ckptPath(j.id))
		dsp.End()
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
		j.setState(StateDead)
		m.metDead.Inc()
	default:
		// The job's own deadline: it proved it cannot finish in its
		// budget, so remove the spec — the next start must not retry it.
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
		j.setState(StateFailed)
		m.removeSpool(j.id)
	}
	// A terminal job ends its root span (drained jobs keep it open — the
	// next incarnation continues the trace). Recovered incarnations have
	// no root handle; their pre-crash announce record stands in and the
	// analyzer infers the extent from the children.
	j.mu.Lock()
	fin := j.state
	j.mu.Unlock()
	if fin.Terminal() && j.rootSpan != nil {
		j.rootSpan.Attr("state", string(fin)).End()
	}
	j.closeSpans()
}

// awaitRetry parks a job between attempts. Drain and cancel interrupt
// the wait with their usual classification, so backoff never delays a
// shutdown.
func (m *Manager) awaitRetry(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.draining:
		return errDrained
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// backoffDelay is RetryBackoff·2^(attempt−1) capped at MaxBackoff, then
// scaled by a jitter factor in [0.5, 1.5) so a burst of failing jobs
// does not hammer a recovering dependency in lockstep.
func (m *Manager) backoffDelay(attempt int) time.Duration {
	d := m.opts.RetryBackoff
	for i := 1; i < attempt && d < m.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > m.opts.MaxBackoff {
		d = m.opts.MaxBackoff
	}
	m.retryMu.Lock()
	jit := 0.5 + m.retryRng.Float64()
	m.retryMu.Unlock()
	return time.Duration(float64(d) * jit)
}

// execute is one attempt of runJob's engine loop, returning nil on
// completion or the classified reason the loop stopped early.
func (m *Manager) execute(ctx context.Context, j *job, att *span.Span) error {
	if j.spec.TimeoutSec > 0 {
		// The spec deadline is the job's total time budget, restarted per
		// attempt only because each attempt resumes from a checkpoint —
		// its expiry is classified non-retryable either way.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx,
			time.Duration(j.spec.TimeoutSec*float64(time.Second)), errSpecDeadline)
		defer cancel()
	}
	if m.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, m.opts.AttemptTimeout, errAttemptTimeout)
		defer cancel()
	}
	mk, err := j.spec.Market()
	if err != nil {
		return err
	}
	cfg := j.spec.Config()
	cfg.Metrics = m.opts.Metrics
	cfg.RunLabel = "carbond/" + j.id
	// Generation spans parent into this attempt, so the waterfall reads
	// job → attempt → gen → wave → lp.solve. Nil-safe when tracing is off.
	cfg.Spans = j.tracer
	cfg.SpanParent = att.Context()
	if m.lpFault != nil {
		cfg.LPFault = m.lpFault.Strike
	}
	j.mu.Lock()
	if j.metrics == nil {
		j.metrics = telemetry.NewRegistry()
	}
	jreg := j.metrics
	j.mu.Unlock()
	cfg.Observer = core.FuncObserver{Generation: func(gs core.GenStats) {
		j.mu.Lock()
		j.latest = &gs
		j.gens = gs.Gen
		j.mu.Unlock()
		jobMetrics(jreg, gs)
		// Fan the generation out to live subscribers. publish appends to
		// the ring and returns — a slow or absent consumer costs the
		// engine nothing, and no RNG is consumed on this path.
		j.events.Publish(Event{Job: j.id, Type: EventGen, Gen: &gs})
	}}

	var e *core.Engine
	if st, lerr := checkpoint.LoadFile(m.ckptPath(j.id)); lerr == nil {
		if e, err = core.Restore(mk, cfg, st); err != nil {
			// Decodes but does not restore (config drift, corrupt fields):
			// discard it and start fresh — re-bought generations over a
			// wedged job.
			quarantine(m.ckptPath(j.id))
			m.metDiscard.Inc()
			e = nil
		} else {
			j.mu.Lock()
			j.resumed = true
			j.gens = e.Gens()
			j.mu.Unlock()
			att.Attr("resumed", true).Attr("start_gen", e.Gens())
		}
	} else if !os.IsNotExist(lerr) {
		// Torn or unreadable checkpoint — the signature a crash mid-write
		// leaves. Quarantine it and start fresh rather than failing the
		// job: losing a checkpoint costs re-computed generations, never
		// correctness.
		quarantine(m.ckptPath(j.id))
		m.metDiscard.Inc()
	}
	if e == nil {
		if e, err = core.NewEngine(mk, cfg); err != nil {
			return err
		}
	}

	for e.Step() {
		if n := e.Faults(); n > 0 {
			// Quarantined evaluations keep an interactive engine alive,
			// but a served job promises the fault-free result. Bail so the
			// retry resumes from the last clean checkpoint and the final
			// answer stays bit-identical to an undisturbed run.
			return fmt.Errorf("serve: job %s: %d quarantined evaluations by generation %d: %w",
				j.id, n, e.Gens(), core.ErrDegraded)
		}
		select {
		case <-m.draining:
			if werr := m.writeCheckpoint(e, j, att); werr != nil {
				return werr
			}
			return errDrained
		default:
		}
		if cerr := context.Cause(ctx); cerr != nil {
			switch {
			case errors.Is(cerr, errSpecDeadline):
				return fmt.Errorf("serve: job %s deadline (%gs) exceeded at generation %d: %w",
					j.id, j.spec.TimeoutSec, e.Gens(), cerr)
			case errors.Is(cerr, errAttemptTimeout):
				return fmt.Errorf("serve: job %s attempt %d timed out (%s) at generation %d: %w",
					j.id, j.status().Attempts, m.opts.AttemptTimeout, e.Gens(), cerr)
			default:
				return cerr
			}
		}
		if m.opts.CheckpointEvery > 0 && e.Gens()%m.opts.CheckpointEvery == 0 {
			if werr := m.writeCheckpoint(e, j, att); werr != nil {
				return werr
			}
		}
	}
	if err := e.Err(); err != nil {
		return err
	}
	res, err := e.Result()
	if err != nil {
		return err
	}
	rec := NewResultRecord(j.id, j.spec, res)
	// Result before checkpoint removal: if the process dies between the
	// two writes, recovery sees spec+result and loads the job as done —
	// never a half-finished state.
	rsp := j.tracer.Start(att.Context(), "result.write").Kind(span.KindIO)
	if err := m.spoolWrite(m.resultPath(j.id), rec); err != nil {
		rsp.Attr("error", true).End()
		return err
	}
	rsp.End()
	_ = os.Remove(m.ckptPath(j.id))
	j.mu.Lock()
	j.result = rec
	j.gens = rec.Gens
	j.mu.Unlock()
	return nil
}

func (m *Manager) writeCheckpoint(e *core.Engine, j *job, att *span.Span) error {
	sp := j.tracer.Start(att.Context(), "checkpoint.write").
		Kind(span.KindIO).Attr("gen", e.Gens())
	defer sp.End()
	st, err := e.Snapshot()
	if err != nil {
		sp.Attr("error", true)
		return err
	}
	if ferr := m.ckptFault.Strike(); ferr != nil {
		tearFile(m.ckptPath(j.id), st.Encode)
		sp.Attr("error", true)
		return fmt.Errorf("serve: checkpoint for %s: %w", j.id, ferr)
	}
	if werr := st.WriteFile(m.ckptPath(j.id)); werr != nil {
		sp.Attr("error", true)
		return werr
	}
	return nil
}

// spoolWrite is writeJSONAtomic behind the spool.write fault site: a
// strike leaves a torn artifact at the final path — the worst a real
// crash produces — and reports the failure.
func (m *Manager) spoolWrite(path string, v any) error {
	if ferr := m.spoolFault.Strike(); ferr != nil {
		tearFile(path, func(w io.Writer) error { return json.NewEncoder(w).Encode(v) })
		return fmt.Errorf("serve: spool write %s: %w", filepath.Base(path), ferr)
	}
	return writeJSONAtomic(path, v)
}

// tearFile simulates a crash mid-write: half the encoding lands at the
// final path with none of the temp-then-rename discipline. Recovery
// must treat such an artifact as corrupt, never parse it as truth.
func tearFile(path string, enc func(io.Writer) error) {
	var buf bytes.Buffer
	if enc(&buf) != nil {
		return
	}
	b := buf.Bytes()
	_ = os.WriteFile(path, b[:len(b)/2], 0o644)
}

func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: job %q: %w", id, ErrNotFound)
	}
	return j, nil
}

func (m *Manager) forget(id string) {
	m.mu.Lock()
	j := m.jobs[id]
	delete(m.jobs, id)
	m.mu.Unlock()
	if j != nil {
		j.events.Close() // subscribers of a deleted record drain and EOF
	}
}

// Spool layout: <id>.job.json (the normalized spec — existence marks a
// job the manager still answers for), <id>.ckpt.json (latest
// checkpoint, removed on completion), <id>.result.json (final summary),
// <id>.dead.json (dead-letter marker for an exhausted job) and
// <id>.spans.jsonl (append-only span trace, Options.Spans).
func (m *Manager) specPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".job.json")
}
func (m *Manager) ckptPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".ckpt.json")
}
func (m *Manager) resultPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".result.json")
}
func (m *Manager) deadPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".dead.json")
}
func (m *Manager) spanPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".spans.jsonl")
}

// removeSpool clears a job's live spool artifacts. The span trace is
// deliberately kept: it is the job's durable latency history, and when a
// fleet router cancels a stale incarnation after failover the spans are
// the only remaining evidence the job ran here — deleting them would
// tear a hole in the cross-node trace. Rescan ignores *.spans.jsonl, so
// the leftover is inert.
func (m *Manager) removeSpool(id string) {
	_ = os.Remove(m.specPath(id))
	_ = os.Remove(m.ckptPath(id))
	_ = os.Remove(m.resultPath(id))
	_ = os.Remove(m.deadPath(id))
}

// writeJSONAtomic writes v as JSON with the same temp-then-rename
// discipline as checkpoint.State.WriteFile: readers (including a
// recovering manager) never observe a torn file.
func writeJSONAtomic(path string, v any) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// writeBytesAtomic writes raw bytes with the temp-then-rename
// discipline of writeJSONAtomic (used for seed checkpoints, whose
// encoding is already a finished envelope).
func writeBytesAtomic(path string, b []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if _, err := f.Write(b); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
