package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"carbon/internal/checkpoint"
	"carbon/internal/core"
	"carbon/internal/par"
	"carbon/internal/telemetry"
)

// Typed errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is the backpressure signal: the FIFO queue is at
	// Options.QueueDepth and the submission was rejected, not blocked.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("serve: no such job")
	// ErrClosed rejects submissions to a draining or closed manager.
	ErrClosed = errors.New("serve: manager closed")
	// ErrNotFinished rejects a result request for a job still in flight.
	ErrNotFinished = errors.New("serve: job not finished")

	// errDrained and errCanceledByUser classify why a running job's loop
	// stopped early (see runJob).
	errDrained        = errors.New("serve: manager draining")
	errCanceledByUser = errors.New("serve: canceled by request")
)

// Options configures a Manager.
type Options struct {
	// Workers is the number of jobs run concurrently (default 1). This is
	// job-level parallelism; each job's evaluation parallelism is its
	// spec's Workers field.
	Workers int
	// QueueDepth bounds the FIFO queue of jobs waiting for a worker
	// (default 16). Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// SpoolDir is where specs, checkpoints and results live. Required.
	SpoolDir string
	// CheckpointEvery writes a checkpoint every N generations while a job
	// runs (default 25; <0 disables periodic checkpoints — drain still
	// checkpoints).
	CheckpointEvery int
	// Metrics, when non-nil, aggregates every job's engine instruments
	// into one registry (served by cmd/carbond next to the job API).
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 16
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 25
	}
	return o
}

// Manager owns the job table, the FIFO queue and the worker pool. All
// methods are safe for concurrent use.
type Manager struct {
	opts Options

	pool  *par.Pool
	queue chan *job
	sem   chan struct{} // caps jobs handed to the pool at opts.Workers

	draining chan struct{} // closed by Close: running jobs park themselves

	mu     sync.Mutex
	jobs   map[string]*job
	seq    int
	closed bool

	dispatcherDone chan struct{}
}

// NewManager creates the spool directory if needed, recovers every
// unfinished job found in it (finished ones are loaded as done so their
// results stay queryable), and starts the worker pool.
func NewManager(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.SpoolDir == "" {
		return nil, errors.New("serve: Options.SpoolDir is required")
	}
	if opts.Workers < 1 || opts.QueueDepth < 1 {
		return nil, errors.New("serve: Workers and QueueDepth must be positive")
	}
	if err := os.MkdirAll(opts.SpoolDir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		opts:           opts,
		pool:           par.NewPool(opts.Workers),
		sem:            make(chan struct{}, opts.Workers),
		draining:       make(chan struct{}),
		jobs:           make(map[string]*job),
		dispatcherDone: make(chan struct{}),
	}
	recovered, err := m.recover()
	if err != nil {
		return nil, err
	}
	// Size the queue so every recovered job fits ahead of QueueDepth new
	// submissions — recovery must never trip its own backpressure.
	m.queue = make(chan *job, opts.QueueDepth+len(recovered))
	for _, j := range recovered {
		m.queue <- j
	}
	go m.dispatch()
	return m, nil
}

// recover scans the spool: a spec with a result is re-registered as
// done; a spec without one becomes a queued job again (runJob restores
// its checkpoint if present). Returns the re-queued jobs in ID order so
// recovery preserves rough submission order.
func (m *Manager) recover() ([]*job, error) {
	entries, err := os.ReadDir(m.opts.SpoolDir)
	if err != nil {
		return nil, err
	}
	var requeue []*job
	for _, ent := range entries {
		id, ok := strings.CutSuffix(ent.Name(), ".job.json")
		if !ok || ent.IsDir() {
			continue
		}
		var spec JobSpec
		if err := readJSON(m.specPath(id), &spec); err != nil {
			return nil, fmt.Errorf("serve: recovering %s: %w", id, err)
		}
		j := &job{id: id, spec: spec, state: StateQueued, submitted: time.Now()}
		if rec := new(ResultRecord); readJSON(m.resultPath(id), rec) == nil {
			j.state = StateDone
			j.result = rec
			j.gens = rec.Gens
		} else {
			requeue = append(requeue, j)
		}
		m.jobs[id] = j
		// Keep fresh IDs clear of every recovered one.
		var n int
		if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	sort.Slice(requeue, func(a, b int) bool { return requeue[a].id < requeue[b].id })
	return requeue, nil
}

// dispatch feeds queued jobs to the pool, at most opts.Workers in
// flight, preserving FIFO order. The worker slot is acquired before the
// job leaves the queue, so QueueDepth is exactly the number of waiting
// jobs — the dispatcher never parks one in limbo between queue and pool.
// It exits when Close closes the queue.
func (m *Manager) dispatch() {
	defer close(m.dispatcherDone)
	for {
		m.sem <- struct{}{}
		j, ok := <-m.queue
		if !ok {
			<-m.sem
			break
		}
		m.pool.Submit(func() {
			defer func() { <-m.sem }()
			m.runJob(j)
		})
	}
	m.pool.Close()
}

// Submit validates, spools and enqueues a job. The spec is normalized
// (withDefaults) before anything is written, so the spooled spec — and
// the config fingerprint a resume will check — is self-contained.
func (m *Manager) Submit(spec JobSpec) (Status, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	m.seq++
	j := &job{
		id:        fmt.Sprintf("j%06d", m.seq),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
	}
	m.jobs[j.id] = j
	m.mu.Unlock()

	// Spool the spec before enqueueing: once Submit returns, a crash
	// cannot lose the job.
	if err := writeJSONAtomic(m.specPath(j.id), spec); err != nil {
		m.forget(j.id)
		return Status{}, err
	}
	// The enqueue happens under the lock so it cannot race Close closing
	// the channel; it is a non-blocking select, so the lock is never held
	// across a wait.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.forget(j.id)
		_ = os.Remove(m.specPath(j.id))
		return Status{}, ErrClosed
	}
	select {
	case m.queue <- j:
		m.mu.Unlock()
		return j.status(), nil
	default:
		m.mu.Unlock()
		m.forget(j.id)
		_ = os.Remove(m.specPath(j.id))
		return Status{}, ErrQueueFull
	}
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	return j.status(), nil
}

// List returns a snapshot of every job, sorted by ID (submission order).
func (m *Manager) List() []Status {
	m.mu.Lock()
	all := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j)
	}
	m.mu.Unlock()
	out := make([]Status, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Result returns the finished job's summary, or ErrNotFinished while it
// is still queued or running.
func (m *Manager) Result(id string) (*ResultRecord, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		if j.state.Terminal() {
			return nil, fmt.Errorf("serve: job %s %s: %s: %w", id, j.state, j.errMsg, ErrNotFinished)
		}
		return nil, ErrNotFinished
	}
	rec := *j.result
	return &rec, nil
}

// Cancel stops a job. A queued job is withdrawn, a running one is
// interrupted at its next generation boundary; either way its spool
// entries are removed. Canceling a terminal job deletes its record (this
// is DELETE's idempotent cleanup path).
func (m *Manager) Cancel(id string) error {
	j, err := m.lookup(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch {
	case j.state == StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errCanceledByUser)
		}
		return nil // runJob finishes the transition and cleans the spool
	case j.state == StateQueued:
		j.state = StateCanceled
		now := time.Now()
		j.finished = &now
		j.mu.Unlock()
	default: // terminal: delete the record entirely
		j.mu.Unlock()
		m.forget(id)
	}
	m.removeSpool(id)
	return nil
}

// Close drains the manager: no new submissions, queued jobs stay spooled
// for the next start, and every running job writes a checkpoint and
// parks at its next generation boundary. The context bounds how long the
// drain may take.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.dispatcherDone
		return nil
	}
	m.closed = true
	close(m.draining)
	close(m.queue)
	m.mu.Unlock()
	select {
	case <-m.dispatcherDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// runJob executes one job end to end: restore-or-create the engine,
// step until the budgets run out, checkpointing periodically, and
// classify any early stop as drain / cancel / deadline.
func (m *Manager) runJob(j *job) {
	select {
	case <-m.draining:
		return // stays queued; its spooled spec resurrects it next start
	default:
	}
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	now := time.Now()
	j.started = &now
	ctx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel(nil)

	err := m.execute(ctx, j)
	j.mu.Lock()
	j.cancel = nil
	j.mu.Unlock()

	switch {
	case err == nil:
		j.setState(StateDone)
	case errors.Is(err, errDrained):
		// Checkpointed; back to the queue (on disk, not in memory — the
		// manager is shutting down).
		j.setState(StateQueued)
	case errors.Is(err, errCanceledByUser):
		j.setState(StateCanceled)
		m.removeSpool(j.id)
	default:
		// Deadline, evaluation failure, spool I/O error. Remove the spec
		// so the next start does not blindly retry a job that just proved
		// it cannot finish.
		j.mu.Lock()
		j.errMsg = err.Error()
		j.mu.Unlock()
		j.setState(StateFailed)
		m.removeSpool(j.id)
	}
}

// execute is runJob's engine loop, returning nil on completion or the
// classified reason the loop stopped early.
func (m *Manager) execute(ctx context.Context, j *job) error {
	if j.spec.TimeoutSec > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.spec.TimeoutSec*float64(time.Second)))
		defer cancel()
	}
	mk, err := j.spec.Market()
	if err != nil {
		return err
	}
	cfg := j.spec.Config()
	cfg.Metrics = m.opts.Metrics
	cfg.RunLabel = "carbond/" + j.id
	j.mu.Lock()
	if j.metrics == nil {
		j.metrics = telemetry.NewRegistry()
	}
	jreg := j.metrics
	j.mu.Unlock()
	cfg.Observer = core.FuncObserver{Generation: func(gs core.GenStats) {
		j.mu.Lock()
		j.latest = &gs
		j.gens = gs.Gen
		j.mu.Unlock()
		jobMetrics(jreg, gs)
	}}

	var e *core.Engine
	if st, lerr := checkpoint.LoadFile(m.ckptPath(j.id)); lerr == nil {
		if e, err = core.Restore(mk, cfg, st); err != nil {
			return fmt.Errorf("serve: resuming %s: %w", j.id, err)
		}
		j.mu.Lock()
		j.resumed = true
		j.gens = e.Gens()
		j.mu.Unlock()
	} else if !os.IsNotExist(lerr) {
		return fmt.Errorf("serve: reading checkpoint for %s: %w", j.id, lerr)
	} else if e, err = core.NewEngine(mk, cfg); err != nil {
		return err
	}

	for e.Step() {
		select {
		case <-m.draining:
			if werr := m.writeCheckpoint(e, j.id); werr != nil {
				return werr
			}
			return errDrained
		default:
		}
		if cerr := context.Cause(ctx); cerr != nil {
			if errors.Is(cerr, context.DeadlineExceeded) {
				return fmt.Errorf("serve: job %s deadline (%gs) exceeded at generation %d: %w",
					j.id, j.spec.TimeoutSec, e.Gens(), cerr)
			}
			return cerr
		}
		if m.opts.CheckpointEvery > 0 && e.Gens()%m.opts.CheckpointEvery == 0 {
			if werr := m.writeCheckpoint(e, j.id); werr != nil {
				return werr
			}
		}
	}
	if err := e.Err(); err != nil {
		return err
	}
	res, err := e.Result()
	if err != nil {
		return err
	}
	rec := newResultRecord(j.id, j.spec, res)
	// Result before checkpoint removal: if the process dies between the
	// two writes, recovery sees spec+result and loads the job as done —
	// never a half-finished state.
	if err := writeJSONAtomic(m.resultPath(j.id), rec); err != nil {
		return err
	}
	_ = os.Remove(m.ckptPath(j.id))
	j.mu.Lock()
	j.result = rec
	j.gens = rec.Gens
	j.mu.Unlock()
	return nil
}

func (m *Manager) writeCheckpoint(e *core.Engine, id string) error {
	st, err := e.Snapshot()
	if err != nil {
		return err
	}
	return st.WriteFile(m.ckptPath(id))
}

func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: job %q: %w", id, ErrNotFound)
	}
	return j, nil
}

func (m *Manager) forget(id string) {
	m.mu.Lock()
	delete(m.jobs, id)
	m.mu.Unlock()
}

// Spool layout: <id>.job.json (the normalized spec — existence marks an
// unfinished-or-done job), <id>.ckpt.json (latest checkpoint, removed on
// completion) and <id>.result.json (final summary).
func (m *Manager) specPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".job.json")
}
func (m *Manager) ckptPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".ckpt.json")
}
func (m *Manager) resultPath(id string) string {
	return filepath.Join(m.opts.SpoolDir, id+".result.json")
}

func (m *Manager) removeSpool(id string) {
	_ = os.Remove(m.specPath(id))
	_ = os.Remove(m.ckptPath(id))
	_ = os.Remove(m.resultPath(id))
}

// writeJSONAtomic writes v as JSON with the same temp-then-rename
// discipline as checkpoint.State.WriteFile: readers (including a
// recovering manager) never observe a torn file.
func writeJSONAtomic(path string, v any) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}
