// Package serve turns the steppable CARBON engine into a crash-safe job
// service: a bounded worker pool drains a FIFO queue of optimization
// jobs, each job checkpoints periodically to a spool directory, and a
// restarted manager rescans the spool and resumes every unfinished job
// exactly where it stopped. Because Engine.Step makes each generation a
// pure function of the snapshot (see core.Restore), a job that survives
// a crash produces the same bits as one that never crashed.
package serve

import (
	"errors"
	"fmt"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/orlib"
	"carbon/internal/span"
)

// JobSpec is the serializable description of one CARBON run: everything
// needed to rebuild the market and configuration from scratch, which is
// what makes a spooled job resumable by a process with no shared memory.
// Zero-valued tuning fields take the paper's Table II defaults.
type JobSpec struct {
	Name string `json:"name,omitempty"` // optional human label

	// Instance selection (orlib covering class + index), plus the
	// multi-customer extension when Customers > 1.
	N         int     `json:"n"`
	M         int     `json:"m"`
	Instance  int     `json:"instance"`
	Customers int     `json:"customers,omitempty"`
	Variation float64 `json:"variation,omitempty"`

	Seed       uint64 `json:"seed"`
	Pop        int    `json:"pop,omitempty"`         // population+archive size, both levels (100)
	ULEvals    int    `json:"ul_evals,omitempty"`    // upper-level budget (50000)
	LLEvals    int    `json:"ll_evals,omitempty"`    // lower-level budget (50000)
	PreySample int    `json:"prey_sample,omitempty"` // prey sampled per predator eval (4)

	// Workers is the engine's evaluation parallelism. It defaults to 1
	// because the determinism contract is per (Seed, Workers) pair: a
	// single-striped job gives the same bits on any machine the spool
	// migrates to, regardless of core count.
	Workers int `json:"workers,omitempty"`

	// TimeoutSec caps the job's wall time (0 = none). A job that blows
	// its deadline fails; it is not resumed on restart.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Surrogate enables surrogate-assisted LP skipping (DESIGN.md §5l)
	// for this job; the zero value keeps the exact golden path. TopK and
	// Warmup override the engine's resolved defaults when positive. Like
	// the core knobs, none of this reaches the checkpoint fingerprint, so
	// a spooled job resumes across an operator mode flip (see
	// Options.ForceExact).
	Surrogate       bool `json:"surrogate,omitempty"`
	SurrogateTopK   int  `json:"surrogate_topk,omitempty"`
	SurrogateWarmup int  `json:"surrogate_warmup,omitempty"`

	// TraceParent carries W3C trace context. On submission it is the
	// caller's context (the API fills it from the traceparent request
	// header); the manager then rewrites it to the job's own root span
	// before spooling, so a restarted manager re-joins the same trace —
	// attempt spans from every incarnation stitch into one tree.
	TraceParent string `json:"traceparent,omitempty"`
}

// withDefaults returns the spec with every zero tuning knob resolved.
// Submit normalizes before spooling so the on-disk spec — and therefore
// the config fingerprint checked at resume — never depends on which
// defaults a later binary ships.
func (s JobSpec) withDefaults() JobSpec {
	if s.Pop == 0 {
		s.Pop = 100
	}
	if s.ULEvals == 0 {
		s.ULEvals = 50000
	}
	if s.LLEvals == 0 {
		s.LLEvals = 50000
	}
	if s.PreySample == 0 {
		s.PreySample = 4
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Customers == 0 {
		s.Customers = 1
	}
	return s
}

// Normalize returns the spec with every default resolved — the
// exported form of the normalization Submit performs, for subsystems
// that run specs outside a Manager (the networked island model): every
// peer of a distributed run must resolve defaults identically or their
// engines diverge.
func (s JobSpec) Normalize() JobSpec { return s.withDefaults() }

// Validate rejects specs that could never run. It expects a normalized
// spec (withDefaults); Submit applies both in order.
func (s *JobSpec) Validate() error {
	switch {
	case s.N <= 0 || s.M <= 0:
		return fmt.Errorf("serve: bad class %dx%d", s.N, s.M)
	case s.Instance < 0:
		return fmt.Errorf("serve: negative instance index %d", s.Instance)
	case s.Pop < 2:
		return fmt.Errorf("serve: population %d below 2", s.Pop)
	case s.ULEvals < s.Pop || s.LLEvals < s.Pop:
		return errors.New("serve: budgets must cover at least one generation")
	case s.PreySample < 1:
		return errors.New("serve: prey_sample must be at least 1")
	case s.Workers < 1:
		return errors.New("serve: workers must be at least 1")
	case s.TimeoutSec < 0:
		return errors.New("serve: negative timeout")
	case s.Customers < 1:
		return errors.New("serve: customers must be at least 1")
	case s.Variation < 0 || s.Variation >= 1:
		return fmt.Errorf("serve: variation %v outside [0,1)", s.Variation)
	case s.SurrogateTopK < 0:
		return fmt.Errorf("serve: negative surrogate_topk %d", s.SurrogateTopK)
	case s.SurrogateWarmup < 0:
		return fmt.Errorf("serve: negative surrogate_warmup %d", s.SurrogateWarmup)
	}
	if s.TraceParent != "" {
		if _, err := span.ParseTraceParent(s.TraceParent); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

// Market rebuilds the job's market. Deterministic: the same spec always
// yields the same instance, on any host.
func (s *JobSpec) Market() (*bcpop.Market, error) {
	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: s.N, M: s.M}, s.Instance)
	if err != nil {
		return nil, err
	}
	if s.Customers > 1 {
		return bcpop.NewMultiMarket(mk.Template(), mk.Leaders(), s.Customers, s.Variation, s.Seed)
	}
	return mk, nil
}

// Config maps the spec onto the engine configuration (Table II defaults
// with the spec's overrides applied).
func (s *JobSpec) Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.ULPopSize, cfg.LLPopSize = s.Pop, s.Pop
	cfg.ULArchiveSize, cfg.LLArchiveSize = s.Pop, s.Pop
	cfg.ULEvalBudget, cfg.LLEvalBudget = s.ULEvals, s.LLEvals
	cfg.PreySample = s.PreySample
	cfg.Workers = s.Workers
	cfg.Surrogate.Enabled = s.Surrogate
	cfg.Surrogate.TopK = s.SurrogateTopK
	cfg.Surrogate.Warmup = s.SurrogateWarmup
	return cfg
}
