package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"carbon/internal/fault"
	"carbon/internal/span"
	"carbon/internal/telemetry"
)

// loadSpans reads a job's span file and indexes it by span ID,
// preferring the ended copy of an announced span. It returns the index
// plus every record (announce duplicates included) for count checks.
func loadSpans(t testing.TB, m *Manager, id string) (map[string]span.Record, []span.Record) {
	t.Helper()
	recs, _, err := span.ReadFile(m.spanPath(id))
	if err != nil {
		t.Fatalf("reading %s spans: %v", id, err)
	}
	byID := map[string]span.Record{}
	for _, r := range recs {
		if prev, ok := byID[r.Span]; ok && prev.EndNS != 0 && r.EndNS == 0 {
			continue
		}
		byID[r.Span] = r
	}
	return byID, recs
}

// pick returns the spans with the given name, ended copies preferred.
func pick(byID map[string]span.Record, name string) []span.Record {
	var out []span.Record
	for _, r := range byID {
		if r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// TestJobSpansDoneLinked pins the full waterfall of a clean job:
// job → {queue.wait, attempt → {gen → waves, checkpoint.write,
// result.write}}, every span parent-linked into one trace, and the
// shared span-duration histograms fed.
func TestJobSpansDoneLinked(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newTestManager(t, Options{Spans: true, CheckpointEvery: 2, Metrics: reg})
	st, err := m.Submit(tinySpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.TraceParent == "" {
		t.Fatal("submit did not stamp the job's root trace context onto the spec")
	}
	done := waitState(t, m, st.ID, StateDone)
	byID, _ := loadSpans(t, m, st.ID)

	roots := pick(byID, "job")
	if len(roots) != 1 {
		t.Fatalf("want exactly one job root span, got %d", len(roots))
	}
	root := roots[0]
	if root.EndNS == 0 || root.Parent != "" || root.Attrs["state"] != "done" {
		t.Fatalf("root span not ended as done: %+v", root)
	}
	rctx, err := span.ParseTraceParent(st.Spec.TraceParent)
	if err != nil || rctx.Span.String() != root.Span {
		t.Fatalf("spec traceparent %q does not name the root span %s", st.Spec.TraceParent, root.Span)
	}

	// Every span is in the root's trace and parent-linked to a present span.
	for _, r := range byID {
		if r.Trace != root.Trace {
			t.Fatalf("span %q escaped the trace: %+v", r.Name, r)
		}
		if r.Parent == "" {
			if r.Name != "job" {
				t.Fatalf("unexpected second root %q", r.Name)
			}
			continue
		}
		if _, ok := byID[r.Parent]; !ok {
			t.Fatalf("span %q orphaned (parent %s absent)", r.Name, r.Parent)
		}
	}

	qs := pick(byID, "queue.wait")
	if len(qs) != 1 || qs[0].Parent != root.Span || qs[0].Kind != span.KindQueue || qs[0].EndNS == 0 {
		t.Fatalf("queue.wait span wrong: %+v", qs)
	}
	atts := pick(byID, "attempt")
	if len(atts) != 1 || atts[0].Parent != root.Span || atts[0].EndNS == 0 {
		t.Fatalf("want one ended attempt under the root, got %+v", atts)
	}
	if done.Attempts != 1 {
		t.Fatalf("clean job took %d attempts", done.Attempts)
	}
	gens := pick(byID, "gen")
	if len(gens) != done.Gens {
		t.Fatalf("got %d gen spans, want %d", len(gens), done.Gens)
	}
	for _, g := range gens {
		if g.Parent != atts[0].Span {
			t.Fatalf("gen span not parented to the attempt: %+v", g)
		}
	}
	for _, name := range []string{"relax", "pred_eval", "prey_eval", "breed"} {
		ws := pick(byID, name)
		if len(ws) != done.Gens {
			t.Fatalf("got %d %q spans, want %d", len(ws), name, done.Gens)
		}
		for _, wsp := range ws {
			if byID[wsp.Parent].Name != "gen" {
				t.Fatalf("%q span not under a gen: %+v", name, wsp)
			}
		}
	}
	cks := pick(byID, "checkpoint.write")
	if len(cks) == 0 {
		t.Fatal("no checkpoint.write spans despite CheckpointEvery=2")
	}
	for _, c := range cks {
		if c.Kind != span.KindIO || c.Parent != atts[0].Span {
			t.Fatalf("checkpoint.write span wrong: %+v", c)
		}
	}
	if rw := pick(byID, "result.write"); len(rw) != 1 || rw[0].Kind != span.KindIO {
		t.Fatalf("result.write span wrong: %+v", rw)
	}

	snap := reg.Snapshot()
	for _, h := range []string{"span.gen_ms", "span.attempt_ms", "span.queue_wait_ms"} {
		if _, ok := snap[h].(telemetry.HistSnapshot); !ok {
			t.Fatalf("missing %s histogram in shared registry", h)
		}
	}
}

// TestJobSpansRetryTimeline: an LP outage fails attempt 1; the trace
// must show both attempts, the backoff between them, the error on the
// failed attempt and the resume marker on the second.
func TestJobSpansRetryTimeline(t *testing.T) {
	inj := fault.New(1)
	inj.Site(fault.SiteLPSolve, fault.Rule{Every: 1, After: 20, Limit: 1})
	m := newTestManager(t, Options{
		Spans:           true,
		CheckpointEvery: 1,
		MaxAttempts:     3,
		RetryBackoff:    time.Millisecond,
		Fault:           inj,
	})
	st, err := m.Submit(tinySpec(13))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, StateDone)
	if done.Attempts != 2 {
		t.Fatalf("job finished after %d attempts, want 2", done.Attempts)
	}
	byID, _ := loadSpans(t, m, st.ID)
	atts := pick(byID, "attempt")
	if len(atts) != 2 {
		t.Fatalf("want 2 attempt spans, got %d", len(atts))
	}
	var first, second span.Record
	for _, a := range atts {
		switch a.Attrs["attempt"] {
		case float64(1):
			first = a
		case float64(2):
			second = a
		}
	}
	if first.Attrs["error"] == nil {
		t.Fatalf("failed attempt carries no error attr: %+v", first)
	}
	if second.Attrs["error"] != nil || second.Attrs["resumed"] != true {
		t.Fatalf("retry attempt should be clean and resumed: %+v", second)
	}
	bks := pick(byID, "backoff")
	if len(bks) != 1 || bks[0].Kind != span.KindBackoff {
		t.Fatalf("want one backoff span, got %+v", bks)
	}
	if bks[0].StartNS < first.EndNS || bks[0].EndNS > second.StartNS {
		t.Fatalf("backoff not between the attempts: backoff %+v first %+v second %+v",
			bks[0], first, second)
	}
}

// TestJobSpansDrainResumeSameTrace: a drained job's next incarnation
// appends to the same span file and the same trace — the root stays
// open (only the submitting process can end it) and the resumed
// attempt is wire-linked (Remote) to it.
func TestJobSpansDrainResumeSameTrace(t *testing.T) {
	spool := t.TempDir()
	m1, err := NewManager(Options{SpoolDir: spool, Spans: true, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(longSpec(17))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a few generations", func() bool {
		s, gerr := m1.Get(st.ID)
		return gerr == nil && s.Gens >= 3
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{SpoolDir: spool, Spans: true, CheckpointEvery: 1})
	waitState(t, m2, st.ID, StateDone)
	byID, recs := loadSpans(t, m2, st.ID)

	rctx, err := span.ParseTraceParent(st.Spec.TraceParent)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Trace != rctx.Trace.String() {
			t.Fatalf("restart broke the trace: %+v", r)
		}
	}
	roots := pick(byID, "job")
	if len(roots) != 1 || roots[0].EndNS != 0 {
		t.Fatalf("drained job's root must stay open (announce only): %+v", roots)
	}
	var recovered, remote bool
	for _, q := range pick(byID, "queue.wait") {
		if q.Attrs["recovered"] == true {
			recovered = true
			if !q.Remote {
				t.Fatalf("recovered queue.wait not marked remote: %+v", q)
			}
		}
	}
	for _, a := range pick(byID, "attempt") {
		remote = remote || a.Remote
		if _, ok := byID[a.Parent]; !ok {
			t.Fatalf("attempt orphaned across restart: %+v", a)
		}
	}
	if !recovered || !remote {
		t.Fatalf("restart left no stitching evidence (recovered=%v remote=%v)", recovered, remote)
	}
}

// TestSubmitAdoptsCallerTraceParent: a valid caller context becomes the
// root's remote parent; the spooled spec carries the job's own context,
// not the caller's.
func TestSubmitAdoptsCallerTraceParent(t *testing.T) {
	var c span.Collector
	caller := span.New(&c).Start(span.Context{}, "client")
	m := newTestManager(t, Options{Spans: true})
	spec := tinySpec(19)
	spec.TraceParent = caller.Context().TraceParent()
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.TraceParent == spec.TraceParent {
		t.Fatal("spec traceparent was not rewritten to the job's root span")
	}
	waitState(t, m, st.ID, StateDone)
	byID, _ := loadSpans(t, m, st.ID)
	roots := pick(byID, "job")
	if len(roots) != 1 {
		t.Fatalf("want one root, got %d", len(roots))
	}
	r := roots[0]
	if !r.Remote || r.Trace != caller.Context().Trace.String() || r.Parent != caller.Context().Span.String() {
		t.Fatalf("root not remote-parented to the caller: %+v (caller %v)", r, caller.Context())
	}
}

// TestAPITraceContextHeaders: POST /v1/jobs extracts the caller's
// traceparent header into the spec and answers (POST and GET alike)
// with the job's own root context in the Traceparent header — a
// malformed incoming header is ignored per W3C, not a 400.
func TestAPITraceContextHeaders(t *testing.T) {
	m := newTestManager(t, Options{Spans: true})
	h := APIHandler(m)

	var c span.Collector
	caller := span.New(&c).Start(span.Context{}, "client")
	var buf []byte
	var err error
	if buf, err = jsonBody(tinySpec(29)); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(buf))
	req.Header.Set("traceparent", caller.Context().TraceParent())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body.String())
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	got := rr.Header().Get("Traceparent")
	if got == "" || got != st.Spec.TraceParent {
		t.Fatalf("POST traceparent header %q != spec %q", got, st.Spec.TraceParent)
	}
	rctx, err := span.ParseTraceParent(got)
	if err != nil || rctx.Trace != caller.Context().Trace {
		t.Fatalf("job did not join the caller's trace: header %q caller %v", got, caller.Context())
	}

	grr, _ := apiDo(t, h, "GET", "/v1/jobs/"+st.ID, nil)
	if grr.Header().Get("Traceparent") != got {
		t.Fatalf("GET traceparent header %q, want %q", grr.Header().Get("Traceparent"), got)
	}

	// Malformed header: ignored, job roots a fresh trace.
	req = httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(buf))
	req.Header.Set("traceparent", "00-garbage-garbage-01")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusCreated {
		t.Fatalf("malformed traceparent header rejected the submit: %d", rr.Code)
	}
	if tp := rr.Header().Get("Traceparent"); tp == "" {
		t.Fatal("fresh-trace submit answered without a Traceparent header")
	} else if ctx2, err := span.ParseTraceParent(tp); err != nil || ctx2.Trace == caller.Context().Trace {
		t.Fatalf("malformed header should root a fresh trace, got %q", tp)
	}
}

func jsonBody(v any) ([]byte, error) { return json.Marshal(v) }

// TestSpansOffLeavesNoFile: the default manager writes no span files
// and stamps no trace context.
func TestSpansOffLeavesNoFile(t *testing.T) {
	m := newTestManager(t, Options{})
	st, err := m.Submit(tinySpec(23))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	if st.Spec.TraceParent != "" {
		t.Fatalf("untraced job got traceparent %q", st.Spec.TraceParent)
	}
	if _, _, err := span.ReadFile(m.spanPath(st.ID)); err == nil {
		t.Fatal("untraced job left a span file behind")
	}
}
