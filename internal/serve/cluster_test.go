package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"carbon/internal/checkpoint"
	"carbon/internal/core"
)

// snapshotBytes runs spec's config in-process for a few generations and
// returns the encoded checkpoint envelope — a valid seed checkpoint for
// SubmitWithCheckpoint, exactly what a cluster router mirrors.
func snapshotBytes(t *testing.T, spec JobSpec, gens int) []byte {
	t.Helper()
	spec = spec.withDefaults()
	mk, err := spec.Market()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(mk, spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gens; i++ {
		if !e.Step() {
			t.Fatalf("engine exhausted after %d generations", i)
		}
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRecoverHostileSpool is the regression test for the spool rescan:
// a spool full of non-job debris — quarantined siblings, span files,
// directories, stray names — must neither be loaded as jobs nor crash
// recovery, and every ID embedded in debris must be burned so fresh
// submissions cannot collide with the leftovers.
func TestRecoverHostileSpool(t *testing.T) {
	spool := t.TempDir()

	// A valid spooled job that recovery must requeue and finish.
	m1, err := NewManager(Options{SpoolDir: spool, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Submit(tinySpec(31)); err != nil {
		t.Fatal(err)
	}
	_ = m1.Close(t.Context())

	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(spool, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Debris, in rough order of hostility: a torn spec (quarantine), a
	// pre-quarantined job whose ID must be burned, an orphan span file
	// from a deleted job (ID must be burned too), a torn checkpoint
	// sibling, names that aren't job IDs at all, and a directory whose
	// name mimics a spec.
	write("j000002.job.json", `{"n": 60, "m":`)
	write("j000005.job.json.corrupt", `{"garbage`)
	write("j000007.spans.jsonl", `{"name":"job"}`)
	write("j000004.ckpt.json.corrupt", "xxx")
	write("README.txt", "not a job")
	write("weird.job.json", `{"n": 60}`)
	if err := os.MkdirAll(filepath.Join(spool, "dir.job.json"), 0o755); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{SpoolDir: spool, Workers: 2})
	list := m2.List()
	if len(list) != 1 || list[0].ID != "j000001" {
		t.Fatalf("recovered %d jobs %v, want only j000001", len(list), list)
	}
	// The torn spec was quarantined, not deleted and not loaded.
	if _, err := os.Stat(filepath.Join(spool, "j000002.job.json.corrupt")); err != nil {
		t.Fatalf("torn spec not quarantined: %v", err)
	}
	// Every ID embedded in debris is burned: the next submission must
	// jump past the highest one (7, from the orphan span file).
	st, err := m2.Submit(tinySpec(32))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000008" {
		t.Fatalf("fresh submission got ID %s, want j000008 (debris IDs burned)", st.ID)
	}
	waitState(t, m2, "j000001", StateDone)
	waitState(t, m2, st.ID, StateDone)
}

func TestHealthSnapshot(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 8})
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(longSpec(uint64(40 + i))); err != nil {
			t.Fatal(err)
		}
	}
	// One worker slot: the dispatcher takes exactly one job, the other
	// two wait in the queue — the arithmetic a router's least-loaded
	// policy depends on.
	var h Health
	waitFor(t, "load snapshot to settle at 1 running / 2 queued", func() bool {
		h = m.Health()
		return h.Running == 1 && h.QueueDepth == 2
	})
	if !h.OK || h.Draining {
		t.Fatalf("healthy manager reported %+v", h)
	}
	if h.JobsTotal != 3 || h.QueueCap != 8 || h.Workers != 1 {
		t.Fatalf("load snapshot %+v, want 3 jobs, cap 8, 1 worker", h)
	}
	for _, st := range m.List() {
		_ = m.Cancel(st.ID)
	}
}

func TestCheckpointBytes(t *testing.T) {
	m := newTestManager(t, Options{Workers: 0})
	st, err := m.Submit(tinySpec(41))
	if err != nil {
		t.Fatal(err)
	}
	// Queued job, no checkpoint yet.
	if _, err := m.CheckpointBytes(st.ID); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("checkpoint of fresh job: %v, want ErrNoCheckpoint", err)
	}
	if _, err := m.CheckpointBytes("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("checkpoint of unknown job: %v, want ErrNotFound", err)
	}
	// A clean envelope on disk round-trips.
	ckpt := snapshotBytes(t, tinySpec(41), 3)
	if err := writeBytesAtomic(m.ckptPath(st.ID), ckpt); err != nil {
		t.Fatal(err)
	}
	got, err := m.CheckpointBytes(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ckpt) {
		t.Fatal("checkpoint bytes mutated in transit")
	}
	// A torn envelope is reported absent — never shipped.
	if err := os.WriteFile(m.ckptPath(st.ID), ckpt[:len(ckpt)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CheckpointBytes(st.ID); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("torn checkpoint: %v, want ErrNoCheckpoint", err)
	}
}

// TestSubmitWithCheckpointResumes is the failover core in miniature:
// seed a job with a mid-run checkpoint and the finished result must be
// bit-identical to an uninterrupted run — the same guarantee a job
// re-homed across workers gets.
func TestSubmitWithCheckpointResumes(t *testing.T) {
	spec := tinySpec(42)
	want := reference(t, spec)
	ckpt := snapshotBytes(t, spec, 4)

	m := newTestManager(t, Options{Workers: 1})
	st, err := m.SubmitWithCheckpoint(spec, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, StateDone)
	if !fin.Resumed {
		t.Fatal("seeded job did not resume from its checkpoint")
	}
	rec, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, rec, want)

	// Garbage bytes are rejected up front, before anything is spooled.
	if _, err := m.SubmitWithCheckpoint(spec, []byte("not a checkpoint")); err == nil {
		t.Fatal("garbage seed checkpoint accepted")
	}
}

// hostileSnapshotBytes builds a structurally valid checkpoint envelope
// whose decoded state has been mutated — the shape a malicious or
// bit-rotted peer hands a router during failover.
func hostileSnapshotBytes(t *testing.T, spec JobSpec, mutate func(*checkpoint.State)) []byte {
	t.Helper()
	spec = spec.withDefaults()
	mk, err := spec.Market()
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(mk, spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !e.Step() {
			t.Fatal(e.Err())
		}
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mutate(st)
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHostileCheckpointQuarantined is the serve end of the hostile-tree
// contract: a checkpoint whose envelope is structurally valid but whose
// predator encodings are hostile — a 513-node tree one past gp.MaxNodes
// or a terminal the primitive set does not know — must pass submission
// (Validate is structural only), fail core.Restore inside execute, get
// quarantined as *.corrupt, and leave the job to finish fresh with the
// bit-identical result of an unseeded run. No panic anywhere.
func TestHostileCheckpointQuarantined(t *testing.T) {
	spec := tinySpec(42)
	want := reference(t, spec)
	// 256 "+" ops over 257 "c" leaves: 513 nodes, one past gp.MaxNodes.
	oversize := strings.Repeat("(+ ", 256) + "c" + strings.Repeat(" c)", 256)
	cases := map[string]func(*checkpoint.State){
		"oversize tree":    func(st *checkpoint.State) { st.Predators[0] = oversize },
		"unknown terminal": func(st *checkpoint.State) { st.Predators[0] = "(+ c zz)" },
		"oversize archive": func(st *checkpoint.State) { st.GPArchT[0] = oversize },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			ckpt := hostileSnapshotBytes(t, spec, mutate)
			spool := t.TempDir()
			m := newTestManager(t, Options{Workers: 1, SpoolDir: spool})
			st, err := m.SubmitWithCheckpoint(spec, ckpt)
			if err != nil {
				t.Fatalf("structurally valid envelope rejected up front: %v", err)
			}
			fin := waitState(t, m, st.ID, StateDone)
			if fin.Resumed {
				t.Fatal("job resumed from a hostile checkpoint")
			}
			rec, err := m.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesReference(t, rec, want)
			corrupt, err := filepath.Glob(filepath.Join(spool, "*.corrupt"))
			if err != nil {
				t.Fatal(err)
			}
			if len(corrupt) == 0 {
				t.Fatal("hostile checkpoint was not quarantined on disk")
			}
		})
	}
}
