package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func apiDo(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func TestAPIEndToEnd(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	h := APIHandler(m)

	// Bad JSON and bad specs are 400s.
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewBufferString("{nope"))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: got %d", rr.Code)
	}
	bad := tinySpec(1)
	bad.N = -1
	if rr, _ := apiDo(t, h, "POST", "/v1/jobs", bad); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad spec: got %d", rr.Code)
	}

	// Submit, then follow the job through the API only.
	rr, body := apiDo(t, h, "POST", "/v1/jobs", tinySpec(41))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: got %d: %s", rr.Code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("bad created status: %+v", st)
	}

	if rr, _ := apiDo(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil); rr.Code != http.StatusConflict &&
		rr.Code != http.StatusOK {
		t.Fatalf("early result: got %d", rr.Code)
	}

	waitFor(t, "job to finish over HTTP", func() bool {
		rr, body := apiDo(t, h, "GET", "/v1/jobs/"+st.ID, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("status: got %d", rr.Code)
		}
		var cur Status
		if err := json.Unmarshal(body, &cur); err != nil {
			t.Fatal(err)
		}
		return cur.State == StateDone
	})

	rr, body = apiDo(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("result: got %d: %s", rr.Code, body)
	}
	var rec ResultRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != st.ID || rec.Gens == 0 || rec.BestTree == "" {
		t.Fatalf("hollow result: %+v", rec)
	}
	assertMatchesReference(t, &rec, reference(t, tinySpec(41)))

	if rr, _ := apiDo(t, h, "GET", "/v1/jobs", nil); rr.Code != http.StatusOK {
		t.Fatalf("list: got %d", rr.Code)
	}
	if rr, _ := apiDo(t, h, "DELETE", "/v1/jobs/"+st.ID, nil); rr.Code != http.StatusOK {
		t.Fatalf("delete: got %d", rr.Code)
	}
	if rr, _ := apiDo(t, h, "GET", "/v1/jobs/"+st.ID, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("deleted job still visible: got %d", rr.Code)
	}
	if rr, _ := apiDo(t, h, "DELETE", "/v1/jobs/"+st.ID, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("double delete: got %d", rr.Code)
	}
}

func TestAPIQueueFullIs429(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 1})
	h := APIHandler(m)
	var ids []string
	got429 := false
	for i := 0; i < 6; i++ {
		rr, body := apiDo(t, h, "POST", "/v1/jobs", longSpec(uint64(50+i)))
		switch rr.Code {
		case http.StatusCreated:
			var st Status
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			got429 = true
			// The 429 must tell the client when to retry and how loaded
			// the queue is — the router's admission layer consumes both.
			if rr.Header().Get("Retry-After") == "" {
				t.Fatal("429 without a Retry-After header")
			}
			var payload struct {
				Error      string `json:"error"`
				QueueDepth *int   `json:"queue_depth"`
				QueueCap   int    `json:"queue_cap"`
			}
			if err := json.Unmarshal(body, &payload); err != nil {
				t.Fatal(err)
			}
			if payload.Error == "" || payload.QueueDepth == nil || payload.QueueCap != 1 {
				t.Fatalf("hollow 429 payload: %s", body)
			}
		default:
			t.Fatalf("submit %d: got %d: %s", i, rr.Code, body)
		}
	}
	if !got429 {
		t.Fatal("never saw 429 with a single worker and QueueDepth 1")
	}
	for _, id := range ids {
		if rr, _ := apiDo(t, h, "DELETE", "/v1/jobs/"+id, nil); rr.Code != http.StatusOK {
			t.Fatalf("cleanup cancel %s failed", id)
		}
	}
}

// TestAPIClusterEndpoints drives the three routes the fleet router
// lives on: the health snapshot, the checkpoint fetch, and restore.
func TestAPIClusterEndpoints(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	h := APIHandler(m)

	rr, body := apiDo(t, h, "GET", "/v1/healthz", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: got %d", rr.Code)
	}
	var hl Health
	if err := json.Unmarshal(body, &hl); err != nil {
		t.Fatal(err)
	}
	if !hl.OK || hl.Workers != 1 {
		t.Fatalf("healthz payload %+v", hl)
	}

	// Restore with a seed checkpoint finishes bit-identical to an
	// uninterrupted run of the same spec.
	spec := tinySpec(61)
	want := reference(t, spec)
	ckpt := snapshotBytes(t, spec, 3)
	rr, body = apiDo(t, h, "POST", "/v1/jobs/restore", RestoreRequest{
		Spec: spec, CheckpointB64: base64.StdEncoding.EncodeToString(ckpt),
	})
	if rr.Code != http.StatusCreated {
		t.Fatalf("restore: got %d: %s", rr.Code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, StateDone)
	rr, body = apiDo(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("restored result: got %d", rr.Code)
	}
	var rec ResultRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	assertMatchesReference(t, &rec, want)

	// The finished job removed its checkpoint: the fetch is a 404.
	if rr, _ := apiDo(t, h, "GET", "/v1/jobs/"+st.ID+"/checkpoint", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("checkpoint of finished job: got %d", rr.Code)
	}
	// Plant one and it comes back verbatim.
	if err := writeBytesAtomic(m.ckptPath(st.ID), ckpt); err != nil {
		t.Fatal(err)
	}
	rr, body = apiDo(t, h, "GET", "/v1/jobs/"+st.ID+"/checkpoint", nil)
	if rr.Code != http.StatusOK || !bytes.Equal(body, ckpt) {
		t.Fatalf("checkpoint fetch: got %d, %d bytes (want %d)", rr.Code, len(body), len(ckpt))
	}

	// Bad base64 and garbage envelopes are 400s, not spooled jobs.
	if rr, _ := apiDo(t, h, "POST", "/v1/jobs/restore", RestoreRequest{
		Spec: spec, CheckpointB64: "%%%",
	}); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad base64: got %d", rr.Code)
	}
	if rr, _ := apiDo(t, h, "POST", "/v1/jobs/restore", RestoreRequest{
		Spec: spec, CheckpointB64: base64.StdEncoding.EncodeToString([]byte("junk")),
	}); rr.Code != http.StatusBadRequest {
		t.Fatalf("garbage envelope: got %d", rr.Code)
	}
}
