package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func apiDo(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func TestAPIEndToEnd(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	h := APIHandler(m)

	// Bad JSON and bad specs are 400s.
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewBufferString("{nope"))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: got %d", rr.Code)
	}
	bad := tinySpec(1)
	bad.N = -1
	if rr, _ := apiDo(t, h, "POST", "/v1/jobs", bad); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad spec: got %d", rr.Code)
	}

	// Submit, then follow the job through the API only.
	rr, body := apiDo(t, h, "POST", "/v1/jobs", tinySpec(41))
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: got %d: %s", rr.Code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("bad created status: %+v", st)
	}

	if rr, _ := apiDo(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil); rr.Code != http.StatusConflict &&
		rr.Code != http.StatusOK {
		t.Fatalf("early result: got %d", rr.Code)
	}

	waitFor(t, "job to finish over HTTP", func() bool {
		rr, body := apiDo(t, h, "GET", "/v1/jobs/"+st.ID, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("status: got %d", rr.Code)
		}
		var cur Status
		if err := json.Unmarshal(body, &cur); err != nil {
			t.Fatal(err)
		}
		return cur.State == StateDone
	})

	rr, body = apiDo(t, h, "GET", "/v1/jobs/"+st.ID+"/result", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("result: got %d: %s", rr.Code, body)
	}
	var rec ResultRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != st.ID || rec.Gens == 0 || rec.BestTree == "" {
		t.Fatalf("hollow result: %+v", rec)
	}
	assertMatchesReference(t, &rec, reference(t, tinySpec(41)))

	if rr, _ := apiDo(t, h, "GET", "/v1/jobs", nil); rr.Code != http.StatusOK {
		t.Fatalf("list: got %d", rr.Code)
	}
	if rr, _ := apiDo(t, h, "DELETE", "/v1/jobs/"+st.ID, nil); rr.Code != http.StatusOK {
		t.Fatalf("delete: got %d", rr.Code)
	}
	if rr, _ := apiDo(t, h, "GET", "/v1/jobs/"+st.ID, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("deleted job still visible: got %d", rr.Code)
	}
	if rr, _ := apiDo(t, h, "DELETE", "/v1/jobs/"+st.ID, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("double delete: got %d", rr.Code)
	}
}

func TestAPIQueueFullIs429(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 1})
	h := APIHandler(m)
	var ids []string
	got429 := false
	for i := 0; i < 6; i++ {
		rr, body := apiDo(t, h, "POST", "/v1/jobs", longSpec(uint64(50+i)))
		switch rr.Code {
		case http.StatusCreated:
			var st Status
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("submit %d: got %d: %s", i, rr.Code, body)
		}
	}
	if !got429 {
		t.Fatal("never saw 429 with a single worker and QueueDepth 1")
	}
	for _, id := range ids {
		if rr, _ := apiDo(t, h, "DELETE", "/v1/jobs/"+id, nil); rr.Code != http.StatusOK {
			t.Fatalf("cleanup cancel %s failed", id)
		}
	}
}
