package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"carbon/internal/core"
	"carbon/internal/telemetry"
)

// TestEventLogOrderAndResume pins the ring semantics: monotonic seqs,
// replay from an arbitrary resume point, EOF after close.
func TestEventLogOrderAndResume(t *testing.T) {
	l := NewEventRing(64, nil)
	for i := 1; i <= 5; i++ {
		l.Publish(Event{Type: EventGen, Gen: &core.GenStats{Gen: i}})
	}
	sub := l.Subscribe(2) // resume after seq 2
	ctx := context.Background()
	for want := 3; want <= 5; want++ {
		ev, skipped, err := sub.Next(ctx)
		if err != nil || skipped != 0 {
			t.Fatalf("Next: %v skipped=%d", err, skipped)
		}
		if ev.Seq != uint64(want) || ev.Gen.Gen != want {
			t.Fatalf("got seq %d gen %d, want %d", ev.Seq, ev.Gen.Gen, want)
		}
	}
	l.Close()
	if _, _, err := sub.Next(ctx); err != io.EOF {
		t.Fatalf("after close: %v, want EOF", err)
	}
	sub.Close()
}

// TestEventLogDropOldest fills the ring past capacity and checks a slow
// subscriber skips forward with an accurate gap count, recorded in the
// drop counter.
func TestEventLogDropOldest(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := NewEventRing(4, reg.Counter("serve.events_dropped"))
	sub := l.Subscribe(0)
	for i := 1; i <= 10; i++ {
		l.Publish(Event{Type: EventGen, Gen: &core.GenStats{Gen: i}})
	}
	// Ring holds seqs 7..10; seqs 1..6 were evicted before the first read.
	ev, skipped, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 6 || ev.Seq != 7 {
		t.Fatalf("got seq %d skipped %d, want seq 7 skipped 6", ev.Seq, skipped)
	}
	if got := reg.Counter("serve.events_dropped").Load(); got != 6 {
		t.Fatalf("serve.events_dropped = %d, want 6", got)
	}
	if sub.Dropped() != 6 {
		t.Fatalf("Dropped() = %d", sub.Dropped())
	}
	for want := 8; want <= 10; want++ {
		ev, skipped, err = sub.Next(context.Background())
		if err != nil || skipped != 0 || ev.Seq != uint64(want) {
			t.Fatalf("drain: seq %d skipped %d err %v, want seq %d", ev.Seq, skipped, err, want)
		}
	}
}

// TestEventLogStaleResumeClamps: a Last-Event-ID from a previous
// incarnation (higher than anything this log ever issued) must not hang
// the subscriber — it clamps to the present.
func TestEventLogStaleResumeClamps(t *testing.T) {
	l := NewEventRing(8, nil)
	l.Publish(Event{Type: EventState, State: StateQueued})
	sub := l.Subscribe(1 << 40)
	l.Publish(Event{Type: EventState, State: StateRunning})
	ev, _, err := sub.Next(context.Background())
	if err != nil || ev.Seq != 2 || ev.State != StateRunning {
		t.Fatalf("stale resume: ev=%+v err=%v", ev, err)
	}
}

// TestEventLogPublisherNeverBlocks: with no consumer draining, a burst
// far past capacity must complete immediately.
func TestEventLogPublisherNeverBlocks(t *testing.T) {
	l := NewEventRing(2, nil)
	_ = l.Subscribe(0) // attached but never reads
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			l.Publish(Event{Type: EventGen, Gen: &core.GenStats{Gen: i}})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on an idle subscriber")
	}
}

// TestJobStreamsLifecycleAndGens runs a real job and checks its stream
// carries queued → running → every generation in order → done, then
// EOF.
func TestJobStreamsLifecycleAndGens(t *testing.T) {
	m := newTestManager(t, Options{SpoolDir: t.TempDir(), EventBuffer: 1024})
	st, err := m.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.Events(st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var states []State
	var gens []int
	for {
		ev, skipped, err := sub.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if skipped != 0 {
			t.Fatalf("dropped %d events with a huge buffer", skipped)
		}
		switch ev.Type {
		case EventState:
			states = append(states, ev.State)
		case EventGen:
			gens = append(gens, ev.Gen.Gen)
		}
	}
	if want := []State{StateQueued, StateRunning, StateDone}; !reflect.DeepEqual(states, want) {
		t.Fatalf("lifecycle stream %v, want %v", states, want)
	}
	if len(gens) == 0 {
		t.Fatal("no generation events streamed")
	}
	for i, g := range gens {
		if g != i+1 {
			t.Fatalf("generation stream out of order at %d: %v", i, gens)
		}
	}
	final, _ := m.Get(st.ID)
	if final.Gens != gens[len(gens)-1] {
		t.Fatalf("streamed %d gens, status says %d", gens[len(gens)-1], final.Gens)
	}
}

// TestStreamingKeepsRunsBitIdentical is the determinism gate for the
// whole plane: a job streamed to several (deliberately slow) consumers
// must produce exactly the result of an undisturbed in-process run.
func TestStreamingKeepsRunsBitIdentical(t *testing.T) {
	spec := tinySpec(7)
	want := reference(t, spec)

	m := newTestManager(t, Options{SpoolDir: t.TempDir(), EventBuffer: 4})
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		sub, err := m.Events(st.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(lazy bool) {
			defer wg.Done()
			defer sub.Close()
			ctx := context.Background()
			for {
				if _, _, err := sub.Next(ctx); err != nil {
					return
				}
				if lazy {
					time.Sleep(time.Millisecond) // force ring eviction
				}
			}
		}(i == 0)
	}
	waitFor(t, "job done", func() bool {
		s, err := m.Get(st.ID)
		return err == nil && s.State == StateDone
	})
	wg.Wait()
	rec, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.BestRevenue != want.Best.Revenue || rec.BestTree != want.Best.TreeStr {
		t.Fatalf("streamed run diverged: revenue %v tree %q, want %v %q",
			rec.BestRevenue, rec.BestTree, want.Best.Revenue, want.Best.TreeStr)
	}
	if rec.Gens != want.Gens || rec.ULEvals != want.ULEvals || rec.LLEvals != want.LLEvals {
		t.Fatalf("streamed run consumed different budgets: %+v vs gens=%d ul=%d ll=%d",
			rec, want.Gens, want.ULEvals, want.LLEvals)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

func readSSE(t *testing.T, r *bufio.Reader) (sseEvent, error) {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.event != "" || ev.data != "" {
				return ev, nil
			}
		case strings.HasPrefix(line, "id: "):
			ev.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			ev.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[6:]
		}
	}
}

// TestSSEEndpointStreamsAndResumes drives GET /v1/jobs/{id}/events over
// real HTTP: full stream first, then a resumed stream via Last-Event-ID
// must replay exactly the events after the token, ending in eof.
func TestSSEEndpointStreamsAndResumes(t *testing.T) {
	m := newTestManager(t, Options{SpoolDir: t.TempDir(), EventBuffer: 4096})
	srv := httptest.NewServer(APIHandler(m))
	defer srv.Close()

	st, err := m.Submit(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	var frames []sseEvent
	for {
		ev, err := readSSE(t, br)
		if err != nil {
			t.Fatalf("stream ended without eof frame: %v", err)
		}
		frames = append(frames, ev)
		if ev.event == "eof" {
			break
		}
	}
	if len(frames) < 4 { // queued, running, ≥1 gen, done, eof
		t.Fatalf("only %d frames", len(frames))
	}
	// Every framed event's id must match its payload seq and be
	// strictly ascending.
	lastSeq := uint64(0)
	for _, f := range frames[:len(frames)-1] {
		var ev Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame data %q: %v", f.data, err)
		}
		if fmt.Sprint(ev.Seq) != f.id || ev.Seq != lastSeq+1 {
			t.Fatalf("frame id %s vs seq %d (last %d)", f.id, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// Resume from the middle: replay must continue at resumeAfter+1.
	resumeAfter := (lastSeq + 1) / 2
	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(resumeAfter))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	br2 := bufio.NewReader(resp2.Body)
	first, err := readSSE(t, br2)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal([]byte(first.data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != resumeAfter+1 {
		t.Fatalf("resume after %d delivered seq %d", resumeAfter, ev.Seq)
	}
	count := uint64(1)
	for {
		f, err := readSSE(t, br2)
		if err != nil {
			t.Fatalf("resumed stream ended without eof: %v", err)
		}
		if f.event == "eof" {
			break
		}
		count++
	}
	if count != lastSeq-resumeAfter {
		t.Fatalf("resumed stream replayed %d events, want %d", count, lastSeq-resumeAfter)
	}

	// Unknown job: 404, not a hung stream.
	resp3, err := http.Get(srv.URL + "/v1/jobs/zzz/events")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: %d", resp3.StatusCode)
	}
}

// TestHealthzEnriched checks the new identity fields on /v1/healthz.
func TestHealthzEnriched(t *testing.T) {
	m := newTestManager(t, Options{SpoolDir: t.TempDir()})
	srv := httptest.NewServer(APIHandler(m))
	defer srv.Close()

	st, err := m.Submit(longSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Incarnation == "" || h.UptimeSec < 0 {
		t.Fatalf("health identity: %+v", h)
	}
	if h.Build.GoVersion == "" {
		t.Fatalf("build info missing: %+v", h.Build)
	}
	if h.ActiveJobs != h.QueueDepth+h.Running || h.ActiveJobs == 0 {
		t.Fatalf("active jobs %d (queue %d running %d)", h.ActiveJobs, h.QueueDepth, h.Running)
	}
	// Incarnation is stable across calls within one process lifetime.
	if h2 := m.Health(); h2.Incarnation != h.Incarnation {
		t.Fatalf("incarnation drifted: %q vs %q", h2.Incarnation, h.Incarnation)
	}
	_ = m.Cancel(st.ID)
}

// TestRecoveredTerminalJobStreamsEOF: subscribing to a job recovered in
// a terminal state yields its final state then EOF — no hang.
func TestRecoveredTerminalJobStreamsEOF(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Options{SpoolDir: dir})
	st, err := m.Submit(tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job done", func() bool {
		s, err := m.Get(st.ID)
		return err == nil && s.State == StateDone
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = m.Close(ctx)

	m2 := newTestManager(t, Options{SpoolDir: dir})
	sub, err := m2.Events(st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ev, _, err := sub.Next(ctx)
	if err != nil || ev.Type != EventState || ev.State != StateDone {
		t.Fatalf("recovered stream: %+v err=%v", ev, err)
	}
	if _, _, err := sub.Next(ctx); err != io.EOF {
		t.Fatalf("recovered terminal stream not closed: %v", err)
	}
}
