package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// ServeEvents streams a job's live events as Server-Sent Events:
//
//	id: <seq>          the per-job sequence number — the resume token
//	event: state|gen   lifecycle transition or generation snapshot
//	data: <Event JSON>
//
// A client reconnecting with a Last-Event-ID header (or ?after=N, for
// tools that cannot set headers) resumes after that sequence number;
// events still retained in the ring are replayed, and events already
// evicted are announced as one `event: dropped` message carrying the
// gap size, never silently skipped. When the job reaches a terminal
// state the stream ends with `event: eof` and the connection closes —
// distinguishable from a network cut, which just drops. The publisher
// side never blocks on this handler (see EventRing), so a stalled
// reader cannot slow a run.
func ServeEvents(m *Manager, w http.ResponseWriter, r *http.Request, id string) {
	after := ParseAfter(r)
	sub, err := m.Events(id, after)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer sub.Close()
	StreamSSE(w, r, sub, id)
}

// StreamSSE writes a subscription out as an SSE response until the
// stream completes (event: eof) or the client disconnects. Shared by
// the worker's job endpoint and the fleet router's proxied streams —
// both speak exactly the same frame protocol, so a client cannot tell
// (and need not care) which tier it is connected to.
func StreamSSE(w http.ResponseWriter, r *http.Request, sub *Subscription, id string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("serve: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // reverse proxies must not buffer
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	for {
		ev, skipped, err := sub.Next(ctx)
		if errors.Is(err, io.EOF) {
			_, _ = fmt.Fprintf(w, "event: eof\ndata: {\"job\":%q}\n\n", id)
			fl.Flush()
			return
		}
		if err != nil {
			return // client went away
		}
		if skipped > 0 {
			_, _ = fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", skipped)
		}
		if werr := writeSSE(w, ev); werr != nil {
			return
		}
		fl.Flush()
	}
}

// ParseAfter extracts the SSE resume token: the Last-Event-ID header,
// falling back to ?after=N for tools that cannot set headers. Garbage
// tokens restart from the oldest retained event.
func ParseAfter(r *http.Request) uint64 {
	tok := r.Header.Get("Last-Event-ID")
	if tok == "" {
		tok = r.URL.Query().Get("after")
	}
	if tok == "" {
		return 0
	}
	n, err := strconv.ParseUint(tok, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func writeSSE(w io.Writer, ev Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b)
	return err
}
