package serve

import (
	"context"
	"sync"
	"time"

	"carbon/internal/core"
	"carbon/internal/span"
	"carbon/internal/telemetry"
)

// State is a job's position in the lifecycle state machine:
//
//	queued ──▶ running ──▶ done
//	   ▲          │ ├────▶ failed
//	   │  drain   │ ├────▶ canceled
//	   └──────────┘ └────▶ dead
//
// Drain (Manager.Close) checkpoints running jobs and parks them back in
// queued; on the next manager start the spool scan re-enqueues them and
// they resume from the checkpoint. A retryable failure (evaluation
// fault, spool I/O error, attempt timeout) sends the job back through
// the retry loop inside running until Options.MaxAttempts is exhausted,
// at which point it is dead-lettered. done, failed, canceled and dead
// are terminal.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	// StateDead marks a job that failed retryably Options.MaxAttempts
	// times in a row. Its spec and a DeadRecord stay in the spool, so a
	// restarted manager reports it as dead instead of silently retrying
	// or losing it.
	StateDead State = "dead"
)

// Terminal reports whether the state can never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateDead
}

// Status is a point-in-time snapshot of one job, safe to serialize.
type Status struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`

	// Resumed is set when this manager restored the job from a spooled
	// checkpoint rather than starting it fresh.
	Resumed bool `json:"resumed,omitempty"`

	Gens  int    `json:"gens"`
	Error string `json:"error,omitempty"`

	// Attempts counts execution attempts so far (0 until the first run
	// starts). A dead job reports exactly Options.MaxAttempts.
	Attempts int `json:"attempts,omitempty"`

	// Latest is the most recent per-generation snapshot from the engine's
	// Observer hook (nil until the first generation completes).
	Latest *core.GenStats `json:"latest,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// job is the manager's mutable record of one run. All fields below mu
// are guarded by it; the identity fields above are immutable.
type job struct {
	id   string
	spec JobSpec

	// Span tracing (nil/zero when Options.Spans is off or the job was
	// recovered in a terminal state). tracer writes to <id>.spans.jsonl
	// via spanExp; root is the job's root span context — rootSpan is the
	// live handle when this process started the trace, nil in a recovered
	// incarnation (the pre-crash announce record stands in for it, and
	// the analyzer infers the root's extent from its children). These are
	// set before the job becomes visible to workers and never reassigned,
	// so they need no locking.
	tracer    *span.Tracer
	spanExp   *span.FileExporter
	root      span.Context
	rootSpan  *span.Span
	queueSpan *span.Span

	// events is the job's live-stream ring (see events.go) — set before
	// the job becomes visible and never reassigned, so it needs no
	// locking; it has its own mutex internally.
	events *EventRing

	mu        sync.Mutex
	state     State
	resumed   bool
	attempts  int
	errMsg    string
	latest    *core.GenStats
	metrics   *telemetry.Registry // per-job gauges (see metrics.go); nil until first run
	gens      int
	result    *ResultRecord
	cancel    context.CancelCauseFunc // non-nil only while running
	submitted time.Time
	started   *time.Time
	finished  *time.Time
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Resumed:   j.resumed,
		Gens:      j.gens,
		Error:     j.errMsg,
		Attempts:  j.attempts,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.latest != nil {
		gs := *j.latest
		st.Latest = &gs
	}
	return st
}

// childOfRoot starts a span under the job's root, marked remote when
// the root was announced by an earlier incarnation of the process (the
// parent link then crosses the wire-encoded TraceParent in the spooled
// spec, not an in-memory Span). Nil-safe: with tracing off it returns a
// nil span.
func (j *job) childOfRoot(name string) *span.Span {
	if j.rootSpan == nil {
		return j.tracer.StartRemote(j.root, name)
	}
	return j.tracer.Start(j.root, name)
}

// closeSpans releases the job's span exporter (idempotent, nil-safe).
// It only closes the file — the spans stay on disk for the analyzer and
// for the next incarnation to append to.
func (j *job) closeSpans() {
	if j.spanExp != nil {
		_ = j.spanExp.Close()
	}
}

// setState transitions the job, stamping started/finished as
// appropriate, and publishes the transition on the job's event stream
// (terminal states also complete the stream).
func (j *job) setState(s State) {
	j.mu.Lock()
	j.state = s
	now := time.Now()
	switch {
	case s == StateRunning && j.started == nil:
		j.started = &now
	case s.Terminal():
		j.finished = &now
	}
	j.mu.Unlock()
	j.publishState()
}

// DeadRecord is the spooled marker of an exhausted job: what failed,
// how many times it was tried, and when it was given up on. Its
// presence in the spool is what lets a restarted manager surface the
// job as dead (attempts preserved) instead of re-running it forever.
type DeadRecord struct {
	ID       string    `json:"id"`
	Attempts int       `json:"attempts"`
	Error    string    `json:"error"`
	Finished time.Time `json:"finished"`
}

// ResultRecord is the serializable summary of a finished job — the
// subset of core.Result that survives JSON (trees travel as their
// canonical text encoding, see gp.Encode).
type ResultRecord struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`

	Gens    int `json:"gens"`
	ULEvals int `json:"ul_evals"`
	LLEvals int `json:"ll_evals"`

	BestRevenue float64   `json:"best_revenue"`
	BestGapPct  float64   `json:"best_gap_pct"`
	BestTree    string    `json:"best_tree"`
	Simplified  string    `json:"simplified"`
	BestPrice   []float64 `json:"best_price"`

	ULCurveX  []float64 `json:"ul_curve_x"`
	ULCurveY  []float64 `json:"ul_curve_y"`
	GapCurveX []float64 `json:"gap_curve_x"`
	GapCurveY []float64 `json:"gap_curve_y"`
}

// NewResultRecord flattens a core.Result for the spool and the API (the
// networked island model reuses it to ship per-island results as JSON).
func NewResultRecord(id string, spec JobSpec, res *core.Result) *ResultRecord {
	return &ResultRecord{
		ID:          id,
		Spec:        spec,
		Gens:        res.Gens,
		ULEvals:     res.ULEvals,
		LLEvals:     res.LLEvals,
		BestRevenue: res.Best.Revenue,
		BestGapPct:  res.Best.GapPct,
		BestTree:    res.Best.TreeStr,
		Simplified:  res.Best.Simplified,
		BestPrice:   res.Best.Price,
		ULCurveX:    res.ULCurve.X,
		ULCurveY:    res.ULCurve.Y,
		GapCurveX:   res.GapCurve.X,
		GapCurveY:   res.GapCurve.Y,
	}
}
