package serve

import (
	"sort"

	"carbon/internal/core"
	"carbon/internal/telemetry"
)

// Per-job live metrics. Every running (or finished-this-process) job
// owns a small registry of gauges fed from its engine's Observer hook —
// pure snapshot state, off the hot path, never consuming engine RNG.
// Manager.MetricsTargets renders them as one Prometheus metric family
// per gauge ("carbond_job_*") with a job="<id>" label per series, next
// to the aggregate engine registry the manager already keeps.

// jobMetrics copies the interesting fields of a generation snapshot
// into the job's gauge registry.
func jobMetrics(reg *telemetry.Registry, gs core.GenStats) {
	reg.Gauge("generation").Set(float64(gs.Gen))
	reg.Gauge("ul_evals").Set(float64(gs.ULEvals))
	reg.Gauge("ll_evals").Set(float64(gs.LLEvals))
	reg.Gauge("best_revenue").Set(gs.BestRevenue)
	reg.Gauge("best_gap_pct").Set(gs.BestGap)
	reg.Gauge("ul_archive_size").Set(float64(gs.ULArchive))
	reg.Gauge("gp_archive_size").Set(float64(gs.GPArchive))
	if st := gs.Search; st != nil {
		reg.Gauge("prey_diversity").Set(st.PreyDiversity)
		reg.Gauge("prey_entropy").Set(st.PreyEntropy)
		reg.Gauge("pred_size_mean").Set(st.PredSizeMean)
		reg.Gauge("gap_p50").Set(st.GapP50)
	}
}

// MetricsTargets snapshots the manager's Prometheus targets: the
// aggregate engine registry (when the manager was built with one) under
// the "carbond" prefix, then one "carbond_job"-prefixed target per job
// that has produced generations in this process, labeled job="<id>" and
// sorted by ID so exposition order is stable. Intended as the prom
// source for telemetry.DynamicHandler — it is re-invoked per scrape, so
// jobs submitted after the server started appear automatically.
func (m *Manager) MetricsTargets() []telemetry.PromTarget {
	var targets []telemetry.PromTarget
	if m.opts.Metrics != nil {
		targets = append(targets, telemetry.PromTarget{Name: "carbond", Registry: m.opts.Metrics})
	}
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	for _, j := range jobs {
		j.mu.Lock()
		reg := j.metrics
		j.mu.Unlock()
		if reg == nil {
			continue
		}
		targets = append(targets, telemetry.PromTarget{
			Name:     "carbond_job",
			Labels:   map[string]string{"job": j.id},
			Registry: reg,
		})
	}
	return targets
}
