package serve

import (
	"strings"
	"testing"

	"carbon/internal/telemetry"
)

// TestMetricsTargetsPerJob runs two jobs to completion and checks the
// manager's Prometheus target set: the aggregate registry first, then
// one labeled target per job, and a text exposition where each job's
// series carries its own job label.
func TestMetricsTargetsPerJob(t *testing.T) {
	agg := telemetry.NewRegistry()
	m := newTestManager(t, Options{Metrics: agg})

	var ids []string
	for seed := uint64(1); seed <= 2; seed++ {
		st, err := m.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}

	targets := m.MetricsTargets()
	if len(targets) != 3 {
		t.Fatalf("got %d targets, want aggregate + 2 jobs", len(targets))
	}
	if targets[0].Name != "carbond" || targets[0].Registry != agg {
		t.Fatalf("first target is not the aggregate: %+v", targets[0])
	}
	for i, id := range ids {
		tg := targets[i+1]
		if tg.Name != "carbond_job" || tg.Labels["job"] != id {
			t.Fatalf("target %d: %+v, want carbond_job{job=%q}", i+1, tg, id)
		}
		if g := tg.Registry.Gauge("generation").Load(); g <= 0 {
			t.Fatalf("job %s generation gauge %v, want > 0", id, g)
		}
		// The manager attaches an observer, so v2 search gauges must be
		// live too.
		if d := tg.Registry.Gauge("pred_size_mean").Load(); d <= 0 {
			t.Fatalf("job %s pred_size_mean gauge %v, want > 0", id, d)
		}
	}

	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, targets...); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, id := range ids {
		want := `carbond_job_best_revenue{job="` + id + `"}`
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %s:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "# TYPE carbond_job_best_revenue gauge") {
		t.Fatalf("exposition missing family header:\n%s", text)
	}
}

// TestMetricsTargetsEmpty covers a fresh manager (no aggregate
// registry, no jobs): the target set is empty, not nil-panicky.
func TestMetricsTargetsEmpty(t *testing.T) {
	m := newTestManager(t, Options{})
	if targets := m.MetricsTargets(); len(targets) != 0 {
		t.Fatalf("idle manager exposes %d targets", len(targets))
	}
}
