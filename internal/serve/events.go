package serve

import (
	"context"
	"io"
	"sync"

	"carbon/internal/core"
	"carbon/internal/telemetry"
)

// Event is one item on a job's live stream: a lifecycle transition or a
// per-generation engine snapshot. Seq is a per-job monotonic sequence
// number starting at 1 — the SSE id: line, and the resume token clients
// hand back as Last-Event-ID.
type Event struct {
	Seq  uint64 `json:"seq"`
	Job  string `json:"job"`
	Type string `json:"type"` // EventState | EventGen

	// State payload (Type == EventState).
	State    State  `json:"state,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`

	// Generation payload (Type == EventGen) — the engine's GenStats with
	// SearchStats attached when the engine computes them.
	Gen *core.GenStats `json:"gen,omitempty"`
}

const (
	// EventState marks a lifecycle transition (queued, running, done, …).
	EventState = "state"
	// EventGen carries one generation's GenStats/SearchStats.
	EventGen = "gen"
)

// EventRing is a job's bounded publish ring. The publisher (the engine's
// observer callback and the lifecycle state machine) appends under one
// mutex and wakes subscribers with a non-blocking signal — it NEVER
// waits on a consumer, so a slow SSE client cannot stall a generation
// or perturb the run (streaming consumes zero algorithm RNG). When the
// ring is full the oldest event is evicted; a subscriber that fell
// behind the eviction horizon skips forward and reports how many events
// it lost, counted in serve.events_dropped. Drop-oldest (not
// drop-newest) because the most recent generation is always the one an
// operator needs.
type EventRing struct {
	mu     sync.Mutex
	buf    []Event // fixed ring storage; seq s lives at (s-1) % len(buf)
	count  int     // retained events, ≤ len(buf)
	next   uint64  // seq the next publish will take (starts at 1)
	subs   map[chan struct{}]struct{}
	closed bool
	drops  *telemetry.Counter // serve.events_dropped (nil-safe)
}

func NewEventRing(capacity int, drops *telemetry.Counter) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{
		buf:   make([]Event, capacity),
		next:  1,
		subs:  make(map[chan struct{}]struct{}),
		drops: drops,
	}
}

// Publish appends one event, stamping its Seq, and wakes subscribers.
// Non-blocking by construction; nil-safe; a closed log drops silently
// (terminal state already streamed).
func (l *EventRing) Publish(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	ev.Seq = l.next
	l.next++
	l.buf[int((ev.Seq-1)%uint64(len(l.buf)))] = ev
	if l.count < len(l.buf) {
		l.count++
	}
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default: // already signaled; subscriber will catch up
		}
	}
	l.mu.Unlock()
}

// Close marks the stream complete — subscribers drain what is retained,
// then Next returns io.EOF. Idempotent, nil-safe.
func (l *EventRing) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.closed = true
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.mu.Unlock()
}

// Subscription is one consumer's cursor into a job's event ring.
type Subscription struct {
	log     *EventRing
	cursor  uint64 // last seq delivered (0 = from the beginning)
	wake    chan struct{}
	dropped uint64
}

// Subscribe opens a cursor positioned just after seq `after` (0 streams
// everything still retained). A token from a future the log never
// reached — a stale Last-Event-ID after a re-home gave the job a fresh
// log — clamps to the present instead of waiting for a seq that will
// never come.
func (l *EventRing) Subscribe(after uint64) *Subscription {
	s := &Subscription{log: l, cursor: after, wake: make(chan struct{}, 1)}
	l.mu.Lock()
	if last := l.next - 1; s.cursor > last {
		s.cursor = last
	}
	l.subs[s.wake] = struct{}{}
	l.mu.Unlock()
	return s
}

// Close detaches the subscription from the ring.
func (s *Subscription) Close() {
	s.log.mu.Lock()
	delete(s.log.subs, s.wake)
	s.log.mu.Unlock()
}

// Dropped reports how many events this subscriber lost to ring
// eviction so far.
func (s *Subscription) Dropped() uint64 { return s.dropped }

// Next blocks until an event past the cursor is available and returns
// it, together with the number of events skipped because the ring
// evicted them before this subscriber caught up (0 in the healthy
// case). After the job's stream completes and is fully drained, Next
// returns io.EOF; a canceled context returns ctx.Err().
func (s *Subscription) Next(ctx context.Context) (Event, uint64, error) {
	for {
		s.log.mu.Lock()
		last := s.log.next - 1
		if s.cursor < last {
			oldest := s.log.next - uint64(s.log.count)
			var skipped uint64
			if s.cursor+1 < oldest {
				skipped = oldest - 1 - s.cursor
				s.cursor = oldest - 1
			}
			s.cursor++
			ev := s.log.buf[int((s.cursor-1)%uint64(len(s.log.buf)))]
			s.log.mu.Unlock()
			if skipped > 0 {
				s.dropped += skipped
				s.log.drops.Add(int64(skipped))
			}
			return ev, skipped, nil
		}
		closed := s.log.closed
		s.log.mu.Unlock()
		if closed {
			return Event{}, 0, io.EOF
		}
		select {
		case <-ctx.Done():
			return Event{}, 0, ctx.Err()
		case <-s.wake:
		}
	}
}

// Events opens a subscription to a job's live stream, resuming after
// seq `after` (0 = from the oldest retained event). The caller must
// Close it.
func (m *Manager) Events(id string, after uint64) (*Subscription, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.events.Subscribe(after), nil
}

// publishState emits the job's current lifecycle position. Reads the
// mutable fields under j.mu; must NOT be called with j.mu held.
func (j *job) publishState() {
	j.mu.Lock()
	ev := Event{
		Job:      j.id,
		Type:     EventState,
		State:    j.state,
		Attempts: j.attempts,
		Error:    j.errMsg,
	}
	terminal := j.state.Terminal()
	j.mu.Unlock()
	j.events.Publish(ev)
	if terminal {
		j.events.Close()
	}
}
