package ga

import "math"

// MeanPairwiseDistance returns the mean Euclidean distance over all
// distinct pairs of the population, normalized by the diameter of the
// bounding box so the value is comparable across markets: ~0 means the
// population has collapsed to a point, larger values mean spread. It
// returns 0 for populations smaller than two or degenerate bounds.
//
// O(n²·d) on the population — cheap next to one generation of LP
// solves, but callers on a hot path should gate it behind their
// observer flag.
func MeanPairwiseDistance(pop [][]float64, b Bounds) float64 {
	if len(pop) < 2 {
		return 0
	}
	var diam float64
	for i := range b.Lo {
		w := b.Up[i] - b.Lo[i]
		diam += w * w
	}
	if diam == 0 {
		return 0
	}
	diam = math.Sqrt(diam)
	var sum float64
	var pairs int
	for i := 0; i < len(pop); i++ {
		for j := i + 1; j < len(pop); j++ {
			var d2 float64
			for g := range pop[i] {
				dx := pop[i][g] - pop[j][g]
				d2 += dx * dx
			}
			sum += math.Sqrt(d2)
			pairs++
		}
	}
	return sum / float64(pairs) / diam
}

// entropyBins is the per-gene histogram resolution used by Entropy. 16
// bins keeps the estimate stable for the population sizes Table II uses
// (100) while still distinguishing a converged gene from a uniform one.
const entropyBins = 16

// Entropy returns the mean per-gene normalized Shannon entropy of the
// population: each gene's values are histogrammed into entropyBins
// equal-width bins over its bounds, and the bin distribution's entropy
// is divided by log(bins) so every gene contributes a value in [0,1].
// 1 means the gene is spread uniformly across its range, 0 means every
// individual agrees (or the gene's bounds are degenerate).
func Entropy(pop [][]float64, b Bounds) float64 {
	if len(pop) == 0 || len(b.Lo) == 0 {
		return 0
	}
	var total float64
	genes := len(b.Lo)
	counts := make([]int, entropyBins)
	for g := 0; g < genes; g++ {
		w := b.Up[g] - b.Lo[g]
		if w <= 0 {
			continue // degenerate gene: zero entropy
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, x := range pop {
			bin := int(float64(entropyBins) * (x[g] - b.Lo[g]) / w)
			if bin < 0 {
				bin = 0
			} else if bin >= entropyBins {
				bin = entropyBins - 1
			}
			counts[bin]++
		}
		var h float64
		n := float64(len(pop))
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / n
			h -= p * math.Log(p)
		}
		total += h / math.Log(entropyBins)
	}
	return total / float64(genes)
}
