package ga

import (
	"math"
	"testing"
)

func unitBox(d int) Bounds {
	b := Bounds{Lo: make([]float64, d), Up: make([]float64, d)}
	for i := range b.Up {
		b.Up[i] = 1
	}
	return b
}

func TestMeanPairwiseDistance(t *testing.T) {
	b := unitBox(2)

	// Collapsed population → 0; opposite corners → exactly 1 (the box
	// diameter normalizes the distance).
	same := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	if d := MeanPairwiseDistance(same, b); d != 0 {
		t.Fatalf("collapsed population distance %v, want 0", d)
	}
	corners := [][]float64{{0, 0}, {1, 1}}
	if d := MeanPairwiseDistance(corners, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("corner pair distance %v, want 1", d)
	}

	// Three collinear points at 0, 1/2, 1 along one axis of a 1-D box:
	// pair distances 1/2, 1/2, 1 → mean 2/3.
	line := [][]float64{{0}, {0.5}, {1}}
	if d := MeanPairwiseDistance(line, unitBox(1)); math.Abs(d-2.0/3) > 1e-12 {
		t.Fatalf("collinear distance %v, want 2/3", d)
	}

	// Degenerate cases return 0 rather than NaN.
	if d := MeanPairwiseDistance([][]float64{{1}}, unitBox(1)); d != 0 {
		t.Fatalf("singleton distance %v", d)
	}
	deg := Bounds{Lo: []float64{3}, Up: []float64{3}}
	if d := MeanPairwiseDistance(line, deg); d != 0 {
		t.Fatalf("degenerate-bounds distance %v", d)
	}
}

func TestEntropy(t *testing.T) {
	b := unitBox(1)

	// Every individual identical → entropy 0.
	same := make([][]float64, 32)
	for i := range same {
		same[i] = []float64{0.25}
	}
	if h := Entropy(same, b); h != 0 {
		t.Fatalf("converged entropy %v, want 0", h)
	}

	// One individual per bin → maximal (normalized to 1).
	uniform := make([][]float64, entropyBins)
	for i := range uniform {
		uniform[i] = []float64{(float64(i) + 0.5) / entropyBins}
	}
	if h := Entropy(uniform, b); math.Abs(h-1) > 1e-12 {
		t.Fatalf("uniform entropy %v, want 1", h)
	}

	// A gene with degenerate bounds contributes 0, pulling the mean down.
	b2 := Bounds{Lo: []float64{0, 5}, Up: []float64{1, 5}}
	pop2 := make([][]float64, entropyBins)
	for i := range pop2 {
		pop2[i] = []float64{(float64(i) + 0.5) / entropyBins, 5}
	}
	if h := Entropy(pop2, b2); math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("half-degenerate entropy %v, want 0.5", h)
	}

	if h := Entropy(nil, b); h != 0 {
		t.Fatalf("empty population entropy %v", h)
	}
}
