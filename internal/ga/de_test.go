package ga

import (
	"testing"

	"carbon/internal/rng"
)

func dePop(r *rng.Rand, n, dim int, b Bounds) [][]float64 {
	pop := make([][]float64, n)
	for i := range pop {
		pop[i] = b.RandomVector(r)
	}
	return pop
}

func TestDEBest1BinStaysInBounds(t *testing.T) {
	r := rng.New(61)
	b := unitBounds(12)
	pop := dePop(r, 20, 12, b)
	for trial := 0; trial < 500; trial++ {
		trialVec := DEBest1Bin(r, pop, trial%20, (trial+3)%20, 0.8, 0.9, b)
		for j, v := range trialVec {
			if v < 0 || v > 1 {
				t.Fatalf("gene %d = %v out of bounds", j, v)
			}
		}
	}
}

func TestDEBest1BinAlwaysInheritsFromMutant(t *testing.T) {
	// With cr=0 exactly one gene (jrand) still comes from the mutant, so
	// the trial usually differs from the target.
	r := rng.New(63)
	b := unitBounds(8)
	pop := dePop(r, 10, 8, b)
	diffs := 0
	for trial := 0; trial < 200; trial++ {
		target := trial % 10
		got := DEBest1Bin(r, pop, 0, target, 0.7, 0, b)
		for j := range got {
			if got[j] != pop[target][j] {
				diffs++
				break
			}
		}
	}
	if diffs < 150 {
		t.Fatalf("trials identical to target too often: %d/200 differed", diffs)
	}
}

func TestDEBest1BinDoesNotMutatePopulation(t *testing.T) {
	r := rng.New(65)
	b := unitBounds(6)
	pop := dePop(r, 8, 6, b)
	snap := make([][]float64, len(pop))
	for i := range pop {
		snap[i] = append([]float64(nil), pop[i]...)
	}
	for trial := 0; trial < 100; trial++ {
		DEBest1Bin(r, pop, trial%8, (trial+1)%8, 0.5, 0.9, b)
	}
	for i := range pop {
		for j := range pop[i] {
			if pop[i][j] != snap[i][j] {
				t.Fatal("DE mutated the population")
			}
		}
	}
}

func TestDEBest1BinTinyPopulation(t *testing.T) {
	r := rng.New(67)
	b := unitBounds(4)
	pop := dePop(r, 3, 4, b) // below the 4-member minimum
	got := DEBest1Bin(r, pop, 0, 1, 0.5, 0.9, b)
	for j := range got {
		if got[j] != pop[0][j] {
			t.Fatal("tiny population should fall back to the best member")
		}
	}
}

func TestDEConvergesOnSphere(t *testing.T) {
	// A pure-DE loop must reliably descend the sphere function — sanity
	// that the operator actually optimizes.
	r := rng.New(69)
	dim := 6
	lo := make([]float64, dim)
	up := make([]float64, dim)
	for j := range lo {
		lo[j], up[j] = -5, 5
	}
	b := Bounds{Lo: lo, Up: up}
	pop := dePop(r, 24, dim, b)
	cost := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return s
	}
	fit := make([]float64, len(pop))
	for i := range pop {
		fit[i] = cost(pop[i])
	}
	best := func() int {
		b := 0
		for i := range fit {
			if fit[i] < fit[b] {
				b = i
			}
		}
		return b
	}
	start := fit[best()]
	for gen := 0; gen < 200; gen++ {
		bi := best()
		for i := range pop {
			trial := DEBest1Bin(r, pop, bi, i, 0.5, 0.9, b)
			if c := cost(trial); c < fit[i] {
				pop[i], fit[i] = trial, c
			}
		}
	}
	end := fit[best()]
	// DE/best/1 collapses population diversity once everyone clusters
	// around the incumbent (difference vectors shrink to zero), so a
	// stand-alone loop stalls at a small residual rather than converging
	// to machine precision; inside CARBON the polynomial-mutation path
	// replenishes diversity. A 25× reduction demonstrates the operator
	// optimizes.
	if end > start/25 {
		t.Fatalf("DE failed to optimize: %v → %v", start, end)
	}
}
