package ga

import "carbon/internal/rng"

// DEBest1Bin produces one differential-evolution trial vector with the
// DE/best/1/bin scheme: the population best perturbed by a scaled
// difference of two distinct random members, crossed binomially with the
// target at rate cr (one gene always comes from the mutant). The result
// is clamped to the bounds.
//
// This is offered as an alternative upper-level *variation* operator
// (core.Config.ULVariation = "de"): the related work the paper surveys
// includes DE-based bi-level solvers (Koh's repairing approach), and the
// ablation benchmark compares it against Table II's SBX suite under the
// same generational loop.
func DEBest1Bin(r *rng.Rand, pop [][]float64, bestIdx, targetIdx int,
	f, cr float64, bounds Bounds) []float64 {

	n := len(pop[targetIdx])
	trial := append([]float64(nil), pop[targetIdx]...)
	if len(pop) < 4 {
		// Too few members for distinct difference vectors: return a
		// clamped copy of the best.
		copy(trial, pop[bestIdx])
		bounds.Clamp(trial)
		return trial
	}
	// Two distinct members different from target and best.
	r1 := r.Intn(len(pop))
	for r1 == targetIdx || r1 == bestIdx {
		r1 = r.Intn(len(pop))
	}
	r2 := r.Intn(len(pop))
	for r2 == targetIdx || r2 == bestIdx || r2 == r1 {
		r2 = r.Intn(len(pop))
	}
	jrand := r.Intn(n)
	for j := 0; j < n; j++ {
		if j == jrand || r.Bool(cr) {
			trial[j] = pop[bestIdx][j] + f*(pop[r1][j]-pop[r2][j])
		}
	}
	bounds.Clamp(trial)
	return trial
}
