// Package ga provides the real-coded and binary genetic-algorithm
// operators named in the paper's Table II: simulated binary crossover
// (SBX) and polynomial mutation for the continuous upper-level encoding,
// two-point crossover and swap mutation for COBRA's binary lower-level
// encoding, and binary tournament selection for both.
//
// All operators take explicit bounds and an explicit *rng.Rand; they
// never mutate their inputs unless the name says so (the *InPlace
// variants), which keeps population bookkeeping in the evolutionary
// loops easy to reason about.
package ga

import (
	"fmt"
	"math"

	"carbon/internal/rng"
)

// Bounds are per-gene inclusive box constraints for real vectors.
type Bounds struct {
	Lo []float64
	Up []float64
}

// Validate checks the bounds are well formed for dimension n.
func (b Bounds) Validate(n int) error {
	if len(b.Lo) != n || len(b.Up) != n {
		return fmt.Errorf("ga: bounds dimension %d/%d, want %d", len(b.Lo), len(b.Up), n)
	}
	for i := range b.Lo {
		if math.IsNaN(b.Lo[i]) || math.IsNaN(b.Up[i]) || b.Up[i] < b.Lo[i] {
			return fmt.Errorf("ga: bad bounds [%v,%v] at gene %d", b.Lo[i], b.Up[i], i)
		}
	}
	return nil
}

// Clamp projects v onto the bounds in place.
func (b Bounds) Clamp(v []float64) {
	for i := range v {
		if v[i] < b.Lo[i] {
			v[i] = b.Lo[i]
		} else if v[i] > b.Up[i] {
			v[i] = b.Up[i]
		}
	}
}

// RandomVector samples a uniform vector inside the bounds.
func (b Bounds) RandomVector(r *rng.Rand) []float64 {
	v := make([]float64, len(b.Lo))
	for i := range v {
		v[i] = r.Range(b.Lo[i], b.Up[i])
		if b.Lo[i] == b.Up[i] {
			v[i] = b.Lo[i]
		}
	}
	return v
}

// SBX performs simulated binary crossover (Deb & Agrawal) with
// distribution index eta, returning two fresh children. Genes cross with
// probability 0.5 each, the conventional per-variable rate; bounds are
// respected by the bounded-SBX spread calculation.
func SBX(r *rng.Rand, a, b []float64, bounds Bounds, eta float64) ([]float64, []float64) {
	n := len(a)
	c1 := append([]float64(nil), a...)
	c2 := append([]float64(nil), b...)
	for i := 0; i < n; i++ {
		if !r.Bool(0.5) {
			continue
		}
		x1, x2 := a[i], b[i]
		if math.Abs(x1-x2) < 1e-14 {
			continue
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		lo, up := bounds.Lo[i], bounds.Up[i]
		u := r.Float64()

		// Bounded SBX: the spread factor is truncated so children stay
		// inside [lo, up].
		spread := func(bound float64) float64 {
			alpha := 2 - math.Pow(bound, -(eta+1))
			if u <= 1/alpha {
				return math.Pow(u*alpha, 1/(eta+1))
			}
			return math.Pow(1/(2-u*alpha), 1/(eta+1))
		}
		delta := x2 - x1
		beta1 := 1 + 2*(x1-lo)/delta
		beta2 := 1 + 2*(up-x2)/delta
		bq1 := spread(beta1)
		bq2 := spread(beta2)
		y1 := 0.5 * ((x1 + x2) - bq1*delta)
		y2 := 0.5 * ((x1 + x2) + bq2*delta)
		if y1 < lo {
			y1 = lo
		}
		if y2 > up {
			y2 = up
		}
		if r.Bool(0.5) {
			y1, y2 = y2, y1
		}
		c1[i], c2[i] = y1, y2
	}
	return c1, c2
}

// PolynomialMutateInPlace applies Deb's polynomial mutation with
// distribution index eta; each gene mutates with probability pm.
func PolynomialMutateInPlace(r *rng.Rand, v []float64, bounds Bounds, eta, pm float64) {
	for i := range v {
		if !r.Bool(pm) {
			continue
		}
		lo, up := bounds.Lo[i], bounds.Up[i]
		span := up - lo
		if span <= 0 {
			continue
		}
		x := v[i]
		d1 := (x - lo) / span
		d2 := (up - x) / span
		u := r.Float64()
		var deltaq float64
		if u < 0.5 {
			bl := 2*u + (1-2*u)*math.Pow(1-d1, eta+1)
			deltaq = math.Pow(bl, 1/(eta+1)) - 1
		} else {
			bu := 2*(1-u) + 2*(u-0.5)*math.Pow(1-d2, eta+1)
			deltaq = 1 - math.Pow(bu, 1/(eta+1))
		}
		x += deltaq * span
		if x < lo {
			x = lo
		} else if x > up {
			x = up
		}
		v[i] = x
	}
}

// BinaryTournament returns the index of the winner of a size-2
// tournament: two distinct uniform candidates compared by better(i, j)
// (true when i beats j). With a single candidate it returns 0.
func BinaryTournament(r *rng.Rand, n int, better func(i, j int) bool) int {
	if n <= 0 {
		panic("ga: tournament over empty population")
	}
	if n == 1 {
		return 0
	}
	i := r.Intn(n)
	j := r.Intn(n - 1)
	if j >= i {
		j++
	}
	if better(i, j) {
		return i
	}
	return j
}

// Tournament returns the winner of a size-k tournament with replacement.
func Tournament(r *rng.Rand, n, k int, better func(i, j int) bool) int {
	if n <= 0 {
		panic("ga: tournament over empty population")
	}
	if k < 1 {
		k = 1
	}
	best := r.Intn(n)
	for t := 1; t < k; t++ {
		c := r.Intn(n)
		if better(c, best) {
			best = c
		}
	}
	return best
}

// TwoPointCrossover performs classic two-point crossover on binary
// strings (COBRA's LL crossover), returning fresh children.
func TwoPointCrossover(r *rng.Rand, a, b []bool) ([]bool, []bool) {
	n := len(a)
	c1 := append([]bool(nil), a...)
	c2 := append([]bool(nil), b...)
	if n < 2 {
		return c1, c2
	}
	p1 := r.Intn(n)
	p2 := r.Intn(n)
	if p1 > p2 {
		p1, p2 = p2, p1
	}
	for i := p1; i < p2; i++ {
		c1[i], c2[i] = c2[i], c1[i]
	}
	return c1, c2
}

// SwapMutateInPlace flips each bit with probability pm (the paper's
// "(GA) swap" LL mutation at rate 1/#variables).
func SwapMutateInPlace(r *rng.Rand, v []bool, pm float64) {
	for i := range v {
		if r.Bool(pm) {
			v[i] = !v[i]
		}
	}
}
