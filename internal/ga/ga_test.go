package ga

import (
	"math"
	"testing"
	"testing/quick"

	"carbon/internal/rng"
)

func unitBounds(n int) Bounds {
	lo := make([]float64, n)
	up := make([]float64, n)
	for i := range up {
		up[i] = 1
	}
	return Bounds{Lo: lo, Up: up}
}

func TestBoundsValidate(t *testing.T) {
	b := unitBounds(3)
	if err := b.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(4); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	bad := Bounds{Lo: []float64{2}, Up: []float64{1}}
	if err := bad.Validate(1); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	nan := Bounds{Lo: []float64{math.NaN()}, Up: []float64{1}}
	if err := nan.Validate(1); err == nil {
		t.Fatal("NaN bounds accepted")
	}
}

func TestClamp(t *testing.T) {
	b := Bounds{Lo: []float64{0, -1}, Up: []float64{1, 1}}
	v := []float64{-5, 3}
	b.Clamp(v)
	if v[0] != 0 || v[1] != 1 {
		t.Fatalf("Clamp gave %v", v)
	}
}

func TestRandomVectorInBounds(t *testing.T) {
	r := rng.New(1)
	b := Bounds{Lo: []float64{-2, 0, 5}, Up: []float64{2, 0, 6}}
	for trial := 0; trial < 200; trial++ {
		v := b.RandomVector(r)
		for i := range v {
			if v[i] < b.Lo[i] || v[i] > b.Up[i] {
				t.Fatalf("gene %d = %v outside [%v,%v]", i, v[i], b.Lo[i], b.Up[i])
			}
		}
		if v[1] != 0 {
			t.Fatalf("degenerate gene should be fixed, got %v", v[1])
		}
	}
}

func TestSBXStaysInBounds(t *testing.T) {
	r := rng.New(2)
	const n = 20
	b := unitBounds(n)
	for trial := 0; trial < 500; trial++ {
		p1 := b.RandomVector(r)
		p2 := b.RandomVector(r)
		c1, c2 := SBX(r, p1, p2, b, 15)
		for i := 0; i < n; i++ {
			for _, c := range [][]float64{c1, c2} {
				if c[i] < -1e-12 || c[i] > 1+1e-12 {
					t.Fatalf("trial %d: child gene %v out of [0,1]", trial, c[i])
				}
			}
		}
	}
}

func TestSBXDoesNotMutateParents(t *testing.T) {
	r := rng.New(3)
	b := unitBounds(10)
	p1 := b.RandomVector(r)
	p2 := b.RandomVector(r)
	p1c := append([]float64(nil), p1...)
	p2c := append([]float64(nil), p2...)
	for i := 0; i < 100; i++ {
		SBX(r, p1, p2, b, 15)
	}
	for i := range p1 {
		if p1[i] != p1c[i] || p2[i] != p2c[i] {
			t.Fatal("SBX mutated a parent")
		}
	}
}

func TestSBXMeanPreservation(t *testing.T) {
	// SBX children are symmetric around the parent midpoint in
	// expectation (boundary truncation introduces only a small bias away
	// from the edges).
	r := rng.New(4)
	b := Bounds{Lo: []float64{0}, Up: []float64{10}}
	p1 := []float64{4}
	p2 := []float64{6}
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		c1, c2 := SBX(r, p1, p2, b, 10)
		sum += c1[0] + c2[0]
	}
	mean := sum / (2 * trials)
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("child mean %v, want ~5", mean)
	}
}

func TestSBXHighEtaStaysNearParents(t *testing.T) {
	// Large eta concentrates children near the parents.
	r := rng.New(5)
	b := Bounds{Lo: []float64{0}, Up: []float64{10}}
	far := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		c1, c2 := SBX(r, []float64{3}, []float64{7}, b, 100)
		for _, c := range []float64{c1[0], c2[0]} {
			if math.Abs(c-3) > 1 && math.Abs(c-7) > 1 {
				far++
			}
		}
	}
	if frac := float64(far) / (2 * trials); frac > 0.02 {
		t.Fatalf("%v of high-eta children far from both parents", frac)
	}
}

func TestSBXIdenticalParents(t *testing.T) {
	r := rng.New(6)
	b := unitBounds(5)
	p := []float64{0.3, 0.3, 0.3, 0.3, 0.3}
	c1, c2 := SBX(r, p, p, b, 15)
	for i := range p {
		if c1[i] != p[i] || c2[i] != p[i] {
			t.Fatal("identical parents should reproduce unchanged")
		}
	}
}

func TestPolynomialMutateInBounds(t *testing.T) {
	r := rng.New(7)
	b := Bounds{Lo: []float64{-3, 0, 2}, Up: []float64{3, 1, 2}}
	for trial := 0; trial < 1000; trial++ {
		v := b.RandomVector(r)
		PolynomialMutateInPlace(r, v, b, 20, 1.0)
		for i := range v {
			if v[i] < b.Lo[i]-1e-12 || v[i] > b.Up[i]+1e-12 {
				t.Fatalf("gene %d = %v outside bounds", i, v[i])
			}
		}
		if v[2] != 2 {
			t.Fatalf("fixed gene moved to %v", v[2])
		}
	}
}

func TestPolynomialMutateRate(t *testing.T) {
	r := rng.New(8)
	b := unitBounds(1000)
	v := make([]float64, 1000)
	for i := range v {
		v[i] = 0.5
	}
	PolynomialMutateInPlace(r, v, b, 20, 0.01)
	changed := 0
	for _, x := range v {
		if x != 0.5 {
			changed++
		}
	}
	// pm=0.01 over 1000 genes: ~10 expected; allow wide slack.
	if changed == 0 || changed > 40 {
		t.Fatalf("pm=0.01 changed %d/1000 genes", changed)
	}
}

func TestPolynomialMutateSmallPerturbations(t *testing.T) {
	// High eta keeps mutations local.
	r := rng.New(9)
	b := Bounds{Lo: []float64{0}, Up: []float64{1}}
	big := 0
	for trial := 0; trial < 5000; trial++ {
		v := []float64{0.5}
		PolynomialMutateInPlace(r, v, b, 100, 1.0)
		if math.Abs(v[0]-0.5) > 0.1 {
			big++
		}
	}
	if frac := float64(big) / 5000; frac > 0.01 {
		t.Fatalf("%v of high-eta mutations were large", frac)
	}
}

func TestBinaryTournamentSelectsBetter(t *testing.T) {
	r := rng.New(10)
	fitness := []float64{5, 1, 9, 3, 7}
	better := func(i, j int) bool { return fitness[i] < fitness[j] }
	wins := make([]int, len(fitness))
	for trial := 0; trial < 10000; trial++ {
		wins[BinaryTournament(r, len(fitness), better)]++
	}
	// The best individual (index 1) must win the most, the worst
	// (index 2) the least.
	for i := range wins {
		if i != 1 && wins[1] <= wins[i] {
			t.Fatalf("best did not dominate: wins=%v", wins)
		}
		if i != 2 && wins[2] >= wins[i] {
			t.Fatalf("worst not dominated: wins=%v", wins)
		}
	}
	// With distinct candidates the worst individual can never win.
	if wins[2] != 0 {
		t.Fatalf("worst individual won %d tournaments", wins[2])
	}
}

func TestBinaryTournamentDistinctCandidates(t *testing.T) {
	// With n=2 the two candidates are always distinct, so the better one
	// must win every time.
	r := rng.New(11)
	better := func(i, j int) bool { return i < j }
	for trial := 0; trial < 100; trial++ {
		if BinaryTournament(r, 2, better) != 0 {
			t.Fatal("with distinct candidates the better must always win")
		}
	}
	if BinaryTournament(r, 1, better) != 0 {
		t.Fatal("singleton tournament must return 0")
	}
}

func TestTournamentPressureGrowsWithK(t *testing.T) {
	r := rng.New(12)
	fitness := []float64{4, 1, 3, 2, 5, 8, 7, 6, 0, 9}
	better := func(i, j int) bool { return fitness[i] < fitness[j] }
	winsAtK := func(k int) int {
		best := 0
		for trial := 0; trial < 5000; trial++ {
			if fitness[Tournament(r, len(fitness), k, better)] == 0 {
				best++
			}
		}
		return best
	}
	if w2, w5 := winsAtK(2), winsAtK(5); w5 <= w2 {
		t.Fatalf("selection pressure did not grow with k: k2=%d k5=%d", w2, w5)
	}
}

func TestTournamentPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Tournament(rng.New(1), 0, 2, func(i, j int) bool { return true })
}

func TestTwoPointCrossover(t *testing.T) {
	r := rng.New(13)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := rr.IntRange(2, 40)
		a := make([]bool, n)
		b := make([]bool, n)
		for i := range a {
			a[i] = true // a is all ones, b all zeros
		}
		c1, c2 := TwoPointCrossover(rr, a, b)
		// Complementarity: at each locus the children carry one 1 and one 0.
		for i := 0; i < n; i++ {
			if c1[i] == c2[i] {
				return false
			}
		}
		// c1 must be: ones outside [p1,p2), zeros inside — i.e. at most
		// two switches when scanning.
		switches := 0
		for i := 1; i < n; i++ {
			if c1[i] != c1[i-1] {
				switches++
			}
		}
		return switches <= 2
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPointCrossoverShortVectors(t *testing.T) {
	r := rng.New(14)
	a, b := []bool{true}, []bool{false}
	c1, c2 := TwoPointCrossover(r, a, b)
	if !c1[0] || c2[0] {
		t.Fatal("length-1 vectors must copy through")
	}
}

func TestSwapMutateRate(t *testing.T) {
	r := rng.New(15)
	const n = 10000
	v := make([]bool, n)
	SwapMutateInPlace(r, v, 20.0/float64(n)) // expect ~20 flips
	flips := 0
	for _, x := range v {
		if x {
			flips++
		}
	}
	if flips < 5 || flips > 50 {
		t.Fatalf("pm=20/n flipped %d bits of %d", flips, n)
	}
}

func BenchmarkSBX(b *testing.B) {
	r := rng.New(16)
	bounds := unitBounds(50)
	p1 := bounds.RandomVector(r)
	p2 := bounds.RandomVector(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SBX(r, p1, p2, bounds, 15)
	}
}

func BenchmarkPolynomialMutate(b *testing.B) {
	r := rng.New(17)
	bounds := unitBounds(50)
	v := bounds.RandomVector(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PolynomialMutateInPlace(r, v, bounds, 20, 0.1)
	}
}
