// Benchmark for the tri-level future-work prototype: one co-evolution
// run of the A→B→customer pricing chain on a mid-size market. Reported
// metrics make the paper's anticipated limitation measurable: the
// bottom level's gap ("gap%") converges CARBON-steadily, while the
// middle level's best revenue ("revB") carries the noisier, unnormalized
// selection signal.
package carbon_test

import (
	"testing"

	"carbon/internal/multilevel"
	"carbon/internal/orlib"
)

func BenchmarkTriLevel(b *testing.B) {
	tm, err := multilevel.NewTriMarketFromClass(orlib.Class{N: 100, M: 5}, 0)
	if err != nil {
		b.Fatal(err)
	}
	gap, revA, revB := 0.0, 0.0, 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := multilevel.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		cfg.PopSize = 12
		cfg.Budget = 1500
		res, err := multilevel.Run(tm, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gap += res.BestGapPct
		revA += res.BestRevenueA
		revB += res.BestRevenueB
	}
	n := float64(b.N)
	b.ReportMetric(gap/n, "gap%")
	b.ReportMetric(revA/n, "revA")
	b.ReportMetric(revB/n, "revB")
}
