// Taxonomy benchmark: the four bi-level architectures implemented in
// this repository, run head-to-head on one mid-size class under equal
// budgets. It operationalizes the paper's §III taxonomy discussion:
//
//	CARBON — competitive co-evolution over heuristics (this paper)
//	COBRA  — co-evolution over raw decision vectors (Legillon et al.)
//	NESTED — legacy nested-sequential GA (NSQ/CST category)
//	CODBA  — decomposition-based "co-evolution" (Chaabani et al.), which
//	         the paper argues is nested in disguise
//
// Each reports the achieved %-gap and the upper-level objective; the UL
// candidate count ("ulEvals") exposes how much upper-level search each
// architecture affords under the same lower-level budget.
package carbon_test

import (
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/cobra"
	"carbon/internal/codba"
	"carbon/internal/core"
	"carbon/internal/nested"
	"carbon/internal/orlib"
)

var taxonomyClass = orlib.Class{N: 250, M: 10}

func taxonomyMarket(b *testing.B) *bcpop.Market {
	b.Helper()
	mk, err := bcpop.NewMarketFromClass(taxonomyClass, 0)
	if err != nil {
		b.Fatal(err)
	}
	return mk
}

const (
	taxULBudget = 400
	taxLLBudget = 800
)

func BenchmarkTaxonomy(b *testing.B) {
	b.Run("CARBON", func(b *testing.B) {
		mk := taxonomyMarket(b)
		gap, rev, ul := 0.0, 0.0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			cfg.Seed = uint64(i + 1)
			cfg.ULPopSize, cfg.LLPopSize = 16, 16
			cfg.ULArchiveSize, cfg.LLArchiveSize = 16, 16
			cfg.ULEvalBudget, cfg.LLEvalBudget = taxULBudget, taxLLBudget
			cfg.PreySample = 2
			cfg.Workers = 1
			res, err := core.Run(mk, cfg)
			if err != nil {
				b.Fatal(err)
			}
			gap += res.Best.GapPct
			rev += res.Best.Revenue
			ul += res.ULEvals
		}
		report(b, gap, rev, ul)
	})
	b.Run("COBRA", func(b *testing.B) {
		mk := taxonomyMarket(b)
		gap, rev, ul := 0.0, 0.0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := cobra.DefaultConfig()
			cfg.Seed = uint64(i + 1)
			cfg.ULPopSize, cfg.LLPopSize = 16, 16
			cfg.ULArchiveSize, cfg.LLArchiveSize = 16, 16
			cfg.ULEvalBudget, cfg.LLEvalBudget = taxULBudget, taxLLBudget
			cfg.CoevPairs = 4
			cfg.ArchiveInject = 2
			cfg.Workers = 1
			res, err := cobra.Run(mk, cfg)
			if err != nil {
				b.Fatal(err)
			}
			gap += res.BestGapPct
			rev += res.BestRevenue
			ul += res.ULEvals
		}
		report(b, gap, rev, ul)
	})
	b.Run("NESTED", func(b *testing.B) {
		mk := taxonomyMarket(b)
		gap, rev, ul := 0.0, 0.0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := nested.DefaultConfig()
			cfg.Seed = uint64(i + 1)
			cfg.PopSize = 16
			cfg.ArchiveSize = 16
			cfg.ULEvalBudget, cfg.LLEvalBudget = taxULBudget, taxLLBudget
			cfg.Workers = 1
			res, err := nested.Run(mk, cfg)
			if err != nil {
				b.Fatal(err)
			}
			gap += res.BestGapPct
			rev += res.BestRevenue
			ul += res.ULEvals
		}
		report(b, gap, rev, ul)
	})
	b.Run("CODBA", func(b *testing.B) {
		mk := taxonomyMarket(b)
		gap, rev, ul := 0.0, 0.0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := codba.DefaultConfig()
			cfg.Seed = uint64(i + 1)
			cfg.ULPopSize = 16
			cfg.ULArchiveSize = 16
			cfg.SubPopSize, cfg.SubGens = 5, 3
			cfg.LLArchiveSize = 16
			cfg.ULEvalBudget, cfg.LLEvalBudget = taxULBudget, taxLLBudget
			cfg.Workers = 1
			res, err := codba.Run(mk, cfg)
			if err != nil {
				b.Fatal(err)
			}
			gap += res.BestGapPct
			rev += res.BestRevenue
			ul += res.ULEvals
		}
		report(b, gap, rev, ul)
	})
}

func report(b *testing.B, gap, rev float64, ul int) {
	b.Helper()
	n := float64(b.N)
	b.ReportMetric(gap/n, "gap%")
	b.ReportMetric(rev/n, "F")
	b.ReportMetric(float64(ul)/n, "ulEvals")
}
