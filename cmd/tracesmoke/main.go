// Command tracesmoke is the end-to-end tracing gate for carbond (run
// via `make trace-smoke`). It drives a small job through the real
// binary along the worst path tracing must survive — a caller-supplied
// traceparent, an injected LP fault (retry + backoff), then a SIGKILL
// and restart mid-attempt — and asserts the span file tells the whole
// story:
//
//   - one trace, joined to the caller's trace id, across both processes
//   - every attempt and generation span parent-linked; zero orphans
//   - the retry timeline shows the faulted attempt (error attr), the
//     killed attempt (open), a backoff sleep, and a remote resumed
//     attempt in the restarted process
//   - the deepest-span breakdown accounts for most of the trace's wall
//     time, and the external wall clock bounds the span-derived wall
//   - `carbonstat -spans` accepts the file and prints the critical path
//
// Any violation exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"carbon/internal/serve"
	"carbon/internal/span"
	"carbon/internal/tracestat"
)

// callerTraceParent plays the role of an upstream service's trace
// context; the job's whole span tree must land in this trace.
const callerTraceParent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// smokeSpec mirrors servesmoke: ~100 generations on the 60x5 class,
// seconds of work — room for a fault and a SIGKILL.
func smokeSpec(seed uint64) serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3, Customers: 1,
		Seed: seed, Pop: 16, ULEvals: 1600, LLEvals: 4800,
		PreySample: 2, Workers: 1,
	}
}

func main() {
	carbond := flag.String("carbond", "", "prebuilt carbond binary (default: go build it)")
	flag.Parse()

	work, err := os.MkdirTemp("", "carbon-tracesmoke-*")
	die(err)
	defer os.RemoveAll(work)
	spool := filepath.Join(work, "spool")

	bin := *carbond
	if bin == "" {
		bin = filepath.Join(work, "carbond")
		step("building carbond")
		out, err := exec.Command("go", "build", "-o", bin, "carbon/cmd/carbond").CombinedOutput()
		if err != nil {
			fatalf("go build carbond: %v\n%s", err, out)
		}
	}

	// One LP fault after 30 solves: attempt 1 dies retryably, backoff,
	// attempt 2 resumes from the checkpoint.
	step("starting carbond with an armed LP fault")
	srv := start(bin, spool, "-fault", "lp.solve:every=1,after=30,limit=1", "-retry-backoff", "50ms")
	t0 := time.Now()
	id, tp := submit(srv.addr, smokeSpec(7))
	ctx, err := span.ParseTraceParent(tp)
	if err != nil {
		fatalf("submit returned bad traceparent %q: %v", tp, err)
	}
	caller, _ := span.ParseTraceParent(callerTraceParent)
	if ctx.Trace != caller.Trace {
		fatalf("job did not join the caller's trace: got %s, want %s", ctx.Trace, caller.Trace)
	}
	if ctx.Span == caller.Span {
		fatalf("job echoed the caller's span id instead of minting its own root")
	}
	fmt.Printf("job %s rooted at %s in the caller's trace\n", id, ctx.Span)

	step("SIGKILL mid-attempt, then restart")
	waitGens(srv.addr, id, 6)
	die(srv.cmd.Process.Kill())
	_ = srv.cmd.Wait()
	srv = start(bin, spool)
	waitDone(srv.addr, id)
	wall := time.Since(t0)
	die(srv.cmd.Process.Signal(syscall.SIGTERM))
	if err := srv.cmd.Wait(); err != nil {
		fatalf("final shutdown: %v", err)
	}

	spanFile := filepath.Join(spool, id+".spans.jsonl")
	step("verifying span linkage in " + spanFile)
	verifyLinkage(spanFile, caller.Trace.String())
	verifyTimeline(spanFile, wall)

	step("carbonstat -spans must reconstruct the critical path")
	out, err := exec.Command("go", "run", "carbon/cmd/carbonstat", "-spans", spanFile).CombinedOutput()
	if err != nil {
		fatalf("carbonstat -spans failed: %v\n%s", err, out)
	}
	for _, want := range []string{"critical path:", "ATTEMPT", "KIND"} {
		if !strings.Contains(string(out), want) {
			fatalf("carbonstat -spans output missing %q:\n%s", want, out)
		}
	}
	fmt.Println("trace-smoke PASS")
}

// verifyLinkage checks the raw records: one trace (the caller's),
// every attempt/gen span parent-linked to the right kind of parent.
func verifyLinkage(path, wantTrace string) {
	recs, truncated, err := span.ReadFile(path)
	die(err)
	if truncated {
		fmt.Println("note: span file tail torn by the SIGKILL (expected, tolerated)")
	}
	byID := map[string]span.Record{}
	for _, r := range recs {
		if r.Trace != wantTrace {
			fatalf("span %s (%s) in foreign trace %s, want %s", r.Span, r.Name, r.Trace, wantTrace)
		}
		if prev, ok := byID[r.Span]; !ok || (prev.EndNS == 0 && r.EndNS != 0) {
			byID[r.Span] = r
		}
	}
	attempts, gens := 0, 0
	for _, r := range byID {
		switch r.Name {
		case "attempt":
			attempts++
			if r.Parent == "" {
				fatalf("attempt span %s has no parent", r.Span)
			}
			p, ok := byID[r.Parent]
			if !ok && !r.Remote {
				fatalf("attempt span %s: local parent %s missing from file", r.Span, r.Parent)
			}
			if ok && p.Name != "job" {
				fatalf("attempt span %s parented by %q, want the job root", r.Span, p.Name)
			}
		case "gen":
			gens++
			p, ok := byID[r.Parent]
			if !ok {
				fatalf("gen span %s: parent %s missing from file", r.Span, r.Parent)
			}
			if p.Name != "attempt" {
				fatalf("gen span %s parented by %q, want an attempt", r.Span, p.Name)
			}
		}
	}
	if attempts < 3 {
		fatalf("only %d attempt spans; want >=3 (fault retry + killed + restarted)", attempts)
	}
	if gens < 6 {
		fatalf("only %d generation spans", gens)
	}
	fmt.Printf("linkage OK: %d spans, %d attempts, %d generations, one trace\n",
		len(byID), attempts, gens)
}

// verifyTimeline checks the assembled tree: no orphans, the retry
// story (error, open, remote resumed), and time accounting.
func verifyTimeline(path string, extWall time.Duration) {
	tree, err := tracestat.LoadSpansFile(path)
	die(err)
	if len(tree.Orphans) > 0 {
		fatalf("%d orphan spans — records were dropped", len(tree.Orphans))
	}
	if len(tree.Traces) != 1 {
		fatalf("span file holds %d traces, want 1", len(tree.Traces))
	}

	atts := tree.Attempts()
	var faulted, killed, resumed bool
	for _, a := range atts {
		if a.Error != "" {
			faulted = true
		}
		if a.Open {
			killed = true
		}
		if a.Remote && a.Resumed && !a.Open {
			resumed = true
		}
	}
	if !faulted || !killed || !resumed {
		fatalf("retry timeline incomplete: faulted=%v killed=%v remote-resumed=%v (%+v)",
			faulted, killed, resumed, atts)
	}
	last := atts[len(atts)-1]
	if last.Open || last.Gens == 0 {
		fatalf("final attempt wrong: %+v", last)
	}

	// A backoff span must separate the faulted attempt from its retry.
	hasBackoff := false
	for _, p := range tracestat.SpanPhases(tree) {
		if p.Name == "backoff" && p.Count >= 1 {
			hasBackoff = true
		}
	}
	if !hasBackoff {
		fatalf("no backoff span recorded for the retry")
	}

	// Time accounting: the span-derived wall is bounded by the external
	// clock, and the deepest-span breakdown covers most of it — the only
	// unclaimed stretch is the kill-to-restart dead window.
	b := tree.Breakdown()
	if b.Wall <= 0 || b.Wall > extWall+500*time.Millisecond {
		fatalf("span wall %v out of bounds (external wall %v)", b.Wall, extWall)
	}
	if b.Covered > b.Wall {
		fatalf("breakdown claims %v of a %v wall", b.Covered, b.Wall)
	}
	if float64(b.Covered) < 0.7*float64(b.Wall) {
		fatalf("breakdown covers only %v of %v wall (<70%%): spans are missing", b.Covered, b.Wall)
	}

	// The critical path must be a parent-linked chain from the root.
	cp := tree.CriticalPath()
	if len(cp) < 3 || cp[0].Record.Name != "job" {
		fatalf("critical path too shallow: %d hops", len(cp))
	}
	for i := 1; i < len(cp); i++ {
		if cp[i].Record.Parent != cp[i-1].Record.Span {
			fatalf("critical path hop %d not parent-linked", i)
		}
	}
	fmt.Printf("timeline OK: %d attempts, wall %v, %.1f%% attributed, critical path %d hops\n",
		len(atts), b.Wall.Round(time.Millisecond), 100*float64(b.Covered)/float64(b.Wall), len(cp))
}

type server struct {
	cmd  *exec.Cmd
	addr string
}

func start(bin, spool string, extra ...string) *server {
	args := append([]string{
		"-addr", "127.0.0.1:0", "-spool", spool, "-jobs", "1", "-checkpoint-every", "1"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	die(err)
	die(cmd.Start())
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, after, ok := strings.Cut(sc.Text(), "serving on "); ok {
			addr := strings.Fields(after)[0]
			go func() {
				for sc.Scan() {
				}
			}()
			waitHealthy(addr)
			return &server{cmd: cmd, addr: addr}
		}
	}
	fatalf("carbond exited before announcing its address")
	return nil
}

func waitHealthy(addr string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/jobs")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("carbond on %s never became healthy", addr)
}

// submit POSTs the spec with the caller's traceparent header and
// returns the job id plus the Traceparent response header.
func submit(addr string, spec serve.JobSpec) (id, traceparent string) {
	var buf bytes.Buffer
	die(json.NewEncoder(&buf).Encode(spec))
	req, err := http.NewRequest("POST", "http://"+addr+"/v1/jobs", &buf)
	die(err)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", callerTraceParent)
	resp, err := http.DefaultClient.Do(req)
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		fatalf("submit: HTTP %d", resp.StatusCode)
	}
	tp := resp.Header.Get("Traceparent")
	if tp == "" {
		fatalf("submit response carries no Traceparent header")
	}
	var st serve.Status
	die(json.NewDecoder(resp.Body).Decode(&st))
	return st.ID, tp
}

func getStatus(addr, id string) (serve.Status, error) {
	var st serve.Status
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func waitGens(addr, id string, n int) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		if st.State == serve.StateDone {
			fatalf("job %s finished before generation %d — budget too small to interrupt", id, n)
		}
		if st.Gens >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	fatalf("job %s never reached generation %d", id, n)
}

func waitDone(addr, id string) serve.Status {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		switch st.State {
		case serve.StateDone:
			return st
		case serve.StateFailed, serve.StateCanceled, serve.StateDead:
			fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("job %s never finished", id)
	return serve.Status{}
}

func step(msg string) { fmt.Println("== " + msg) }

func die(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracesmoke: "+format+"\n", args...)
	os.Exit(1)
}
