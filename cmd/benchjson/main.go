// Command benchjson converts `go test -bench` text output into a stable
// JSON document (run via `make bench`, which commits the result as
// BENCH_pr3.json). It reads benchmark output on stdin and emits one
// record per benchmark with every reported metric keyed by its unit —
// ns/op and B/op from -benchmem, plus custom b.ReportMetric units such
// as lp_solves/gen. Package headers (`pkg: ...`) prefix benchmark names
// so results from several packages can share one file.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | go run carbon/cmd/benchjson -out BENCH.json
//	go run carbon/cmd/benchjson -diff BENCH_pr4.json BENCH_pr6.json
//
// -diff compares two captured files benchmark-by-benchmark on ns/op,
// prints the delta table, and exits 1 when any shared benchmark
// regressed by more than -tolerance (default 10%) — wall-clock noise on
// a loaded machine is the caller's problem; rerun before believing a
// flag.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// record is one benchmark line. Metrics maps unit → value, e.g.
// {"ns/op": 4342756, "allocs/op": 1139, "lp_solves/gen": 11.25}.
type record struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// parse consumes `go test -bench` output. Benchmark lines look like:
//
//	BenchmarkEngineStep-4   20   4342756 ns/op   11.25 lp_solves/gen   139818 B/op   1139 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. Lines that do
// not start with "Benchmark" are headers, PASS/ok trailers, or test
// noise and are skipped — except `pkg:` headers, which set the package
// attributed to subsequent benchmarks.
func parse(sc *bufio.Scanner) ([]record, error) {
	var out []record
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		rec := record{Name: fields[0], Pkg: pkg, Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			rec.Metrics[fields[i+1]] = v
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Stable order regardless of package scheduling, so committed
	// outputs diff cleanly across runs.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

func main() {
	outPath := flag.String("out", "", "write JSON here instead of stdout")
	diff := flag.Bool("diff", false, "compare two captured JSON files (old new); exit 1 on regression")
	tolerance := flag.Float64("tolerance", 10, "ns/op regression percentage that fails -diff")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two JSON files (old new)")
			os.Exit(2)
		}
		regressed, err := diffFiles(flag.Arg(0), flag.Arg(1), *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed >%.0f%%\n", regressed, *tolerance)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	recs, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *outPath == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(recs), *outPath)
}

// diffFiles compares ns/op between two captures, keyed by pkg+name.
// Benchmarks present in only one file are reported but never fail the
// diff — PRs add and retire benchmarks legitimately.
func diffFiles(oldPath, newPath string, tolerance float64) (regressed int, err error) {
	load := func(path string) (map[string]record, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var recs []record
		if err := json.Unmarshal(buf, &recs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]record, len(recs))
		for _, r := range recs {
			m[r.Pkg+" "+r.Name] = r
		}
		return m, nil
	}
	olds, err := load(oldPath)
	if err != nil {
		return 0, err
	}
	news, err := load(newPath)
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(news))
	for k := range news {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Printf("old: %s\nnew: %s\n", oldPath, newPath)
	fmt.Printf("%-50s %14s %14s %9s\n", "BENCHMARK", "OLD ns/op", "NEW ns/op", "DELTA")
	for _, k := range keys {
		nr := news[k]
		or, ok := olds[k]
		if !ok {
			fmt.Printf("%-50s %14s %14.0f %9s\n", nr.Name, "-", nr.Metrics["ns/op"], "new")
			continue
		}
		oldNS, newNS := or.Metrics["ns/op"], nr.Metrics["ns/op"]
		if oldNS == 0 {
			continue
		}
		delta := 100 * (newNS - oldNS) / oldNS
		mark := ""
		if delta > tolerance {
			mark = "  !! regression"
			regressed++
		}
		fmt.Printf("%-50s %14.0f %14.0f %+8.1f%%%s\n", nr.Name, oldNS, newNS, delta, mark)
	}
	for k := range olds {
		if _, ok := news[k]; !ok {
			fmt.Printf("%-50s %14.0f %14s %9s\n", olds[k].Name, olds[k].Metrics["ns/op"], "-", "gone")
		}
	}
	return regressed, nil
}
