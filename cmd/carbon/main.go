// Command carbon runs one CARBON optimization on a BCPOP instance class
// and prints the best pricing, the best evolved heuristic and the
// convergence summary.
//
// Usage:
//
//	carbon [-n 100] [-m 5] [-runsidx 0] [-seed 1] [-pop 100]
//	       [-ulevals 50000] [-llevals 50000] [-sample 4] [-workers 0]
//	       [-surrogate] [-exact] [-curves]
//
// Observability (all optional, none perturbs the seeded result):
//
//	-trace run.jsonl     write one JSON event per generation (see README)
//	-metrics-addr :8080  serve /metrics, /debug/vars and /debug/pprof live
//	-progress 2s         print a progress line to stderr every interval
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"carbon/internal/bcpop"
	"carbon/internal/checkpoint"
	"carbon/internal/core"
	"carbon/internal/orlib"
	"carbon/internal/telemetry"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of market bundles (paper: 100, 250, 500)")
		m       = flag.Int("m", 5, "number of service constraints (paper: 5, 10, 30)")
		idx     = flag.Int("instance", 0, "instance index within the class")
		seed    = flag.Uint64("seed", 1, "run seed")
		pop     = flag.Int("pop", 100, "population and archive size at both levels")
		ulEvals = flag.Int("ulevals", 50000, "upper-level fitness evaluation budget")
		llEvals = flag.Int("llevals", 50000, "lower-level fitness evaluation budget")
		sample  = flag.Int("sample", 4, "prey sampled per predator evaluation")
		workers = flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")

		interpret = flag.Bool("interpret", false, "use the tree-walking GP interpreter instead of compiled bytecode (golden reference; bit-identical, slower)")
		curves    = flag.Bool("curves", false, "print convergence curves as CSV")

		surrogate  = flag.Bool("surrogate", false, "skip LP solves for low-ranked prey using an online surrogate (DESIGN.md §5l; deterministic, approximate)")
		exact      = flag.Bool("exact", false, "force exact LP evaluation for every genotype (overrides -surrogate; the golden path)")
		surrTopK   = flag.Int("surrogate-topk", 0, "prey ranks solved exactly per generation (0 = pop/4)")
		surrWarmup = flag.Int("surrogate-warmup", 0, "generations of exact evaluation before skipping starts (0 = default 5)")

		customers = flag.Int("customers", 1, "rational customers (>1 = multi-customer extension)")
		variation = flag.Float64("variation", 0.25, "per-customer requirement variation (multi-customer)")

		saveEvery = flag.Int("checkpoint-every", 0, "write a checkpoint every N generations (0 = off)")
		ckptPath  = flag.String("checkpoint", "carbon.ckpt.json", "checkpoint file path")
		resume    = flag.Bool("resume", false, "resume from the checkpoint file")

		trace       = flag.String("trace", "", "write a per-generation JSONL trace to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, expvar and pprof on this address (e.g. :8080)")
		progrEvery  = flag.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	)
	flag.Parse()

	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: *n, M: *m}, *idx)
	if err == nil && *customers > 1 {
		var in = mk.Template()
		mk, err = bcpop.NewMultiMarket(in, mk.Leaders(), *customers, *variation, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbon:", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.ULPopSize, cfg.LLPopSize = *pop, *pop
	cfg.ULArchiveSize, cfg.LLArchiveSize = *pop, *pop
	cfg.ULEvalBudget, cfg.LLEvalBudget = *ulEvals, *llEvals
	cfg.PreySample = *sample
	cfg.Workers = *workers
	cfg.Interpret = *interpret
	cfg.Surrogate.Enabled = *surrogate && !*exact
	cfg.Surrogate.TopK = *surrTopK
	cfg.Surrogate.Warmup = *surrWarmup

	// Telemetry wiring: everything here is read-only with respect to
	// the run, so the seeded result is identical with or without it.
	var observers []core.Observer
	var traceObs *core.JSONLObserver
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbon:", err)
			os.Exit(1)
		}
		traceObs = core.NewJSONLObserver(f)
		observers = append(observers, traceObs)
	}
	if *progrEvery > 0 {
		observers = append(observers, newProgressPrinter(*progrEvery))
	}
	if len(observers) > 0 {
		cfg.Observer = core.MultiObserver(observers...)
	}
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		cfg.Metrics = reg
		addr, stop, err := telemetry.Serve(*metricsAddr, map[string]*telemetry.Registry{"carbon": reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbon:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
	}

	fmt.Printf("CARBON on class n=%d m=%d (instance %d, L=%d leader bundles, %d customer(s))\n",
		*n, *m, *idx, mk.Leaders(), mk.Customers())
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	t0 := time.Now()
	res, err := runWithCheckpoints(ctx, mk, cfg, *saveEvery, *ckptPath, *resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbon:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if traceObs != nil {
		if err := traceObs.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "carbon: closing trace:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("finished: %d generations, %d UL evals, %d LL evals in %v\n",
		res.Gens, res.ULEvals, res.LLEvals, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("best UL objective (revenue):  %.2f\n", res.Best.Revenue)
	fmt.Printf("best heuristic mean %%-gap:    %.3f%%\n", res.Best.GapPct)
	fmt.Printf("best evolved heuristic:       %s\n", res.Best.TreeStr)
	if res.Best.Simplified != res.Best.TreeStr {
		fmt.Printf("simplified:                   %s\n", res.Best.Simplified)
	}
	if len(res.Best.Price) <= 20 {
		fmt.Printf("best pricing: %.2f\n", res.Best.Price)
	}
	if *curves {
		fmt.Println("evals,best_F")
		for i := range res.ULCurve.X {
			fmt.Printf("%.0f,%.4f\n", res.ULCurve.X[i], res.ULCurve.Y[i])
		}
		fmt.Println("evals,best_gap")
		for i := range res.GapCurve.X {
			fmt.Printf("%.0f,%.4f\n", res.GapCurve.X[i], res.GapCurve.Y[i])
		}
	}
}

// runWithCheckpoints drives the engine directly so long runs can be
// snapshotted, interrupted and resumed. On Ctrl-C/SIGTERM the current
// state is checkpointed to path before returning, so an interrupted run
// continues later with -resume.
func runWithCheckpoints(ctx context.Context, mk *bcpop.Market, cfg core.Config, every int, path string, resume bool) (*core.Result, error) {
	var (
		e   *core.Engine
		err error
	)
	if resume {
		st, lerr := checkpoint.LoadFile(path)
		if lerr != nil {
			return nil, lerr
		}
		e, err = core.Restore(mk, cfg, st)
		if err == nil {
			fmt.Fprintf(os.Stderr, "resumed from %s at generation %d\n", path, e.Gens())
		}
	} else {
		e, err = core.NewEngine(mk, cfg)
	}
	if err != nil {
		return nil, err
	}
	for e.Step() {
		if cerr := ctx.Err(); cerr != nil {
			if werr := writeCheckpoint(e, path); werr != nil {
				return nil, fmt.Errorf("interrupted, and checkpointing failed: %w", werr)
			}
			fmt.Fprintf(os.Stderr, "interrupted at generation %d; checkpoint saved to %s (resume with -resume)\n",
				e.Gens(), path)
			return nil, fmt.Errorf("run interrupted: %w", cerr)
		}
		if every > 0 && e.Gens()%every == 0 {
			if werr := writeCheckpoint(e, path); werr != nil {
				return nil, werr
			}
		}
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	res, err := e.Result()
	if err != nil {
		return nil, err
	}
	if cfg.Observer != nil {
		cfg.Observer.OnDone(res)
	}
	return res, nil
}

// progressPrinter is the -progress observer: a rate-limited one-line
// status to stderr (generation, evals used, best revenue, best gap,
// evals/sec).
type progressPrinter struct {
	every time.Duration
	mu    sync.Mutex
	start time.Time
	last  time.Time
}

func newProgressPrinter(every time.Duration) *progressPrinter {
	now := time.Now()
	return &progressPrinter{every: every, start: now, last: now}
}

func (p *progressPrinter) OnGeneration(gs core.GenStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	evals := gs.ULEvals + gs.LLEvals
	rate := float64(evals) / now.Sub(p.start).Seconds()
	fmt.Fprintf(os.Stderr,
		"gen %-5d evals %d/%d  best F %.2f  best gap %.3f%%  %.0f evals/s\n",
		gs.Gen, evals, gs.ULBudget+gs.LLBudget, gs.BestRevenue, gs.BestGap, rate)
}

func (p *progressPrinter) OnMigration(ms core.MigrationStats) {}

func (p *progressPrinter) OnDone(res *core.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rate := float64(res.ULEvals+res.LLEvals) / time.Since(p.start).Seconds()
	fmt.Fprintf(os.Stderr, "done: %d generations, best F %.2f, best gap %.3f%%, %.0f evals/s\n",
		res.Gens, res.Best.Revenue, res.Best.GapPct, rate)
}

func writeCheckpoint(e *core.Engine, path string) error {
	st, err := e.Snapshot()
	if err != nil {
		return err
	}
	return st.WriteFile(path)
}
