// Command trilevel runs the tri-level pricing-chain prototype (the
// paper's future-work direction) on a class: CSP-A prices, CSP-B reacts
// through an evolved pricing policy, the customer reacts through an
// evolved covering heuristic.
//
// Usage:
//
//	trilevel [-n 100] [-m 5] [-instance 0] [-seed 1] [-pop 24]
//	         [-budget 6000] [-sample 2] [-curves]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"carbon/internal/multilevel"
	"carbon/internal/orlib"
)

func main() {
	var (
		n      = flag.Int("n", 100, "number of market bundles")
		m      = flag.Int("m", 5, "number of service constraints")
		idx    = flag.Int("instance", 0, "instance index within the class")
		seed   = flag.Uint64("seed", 1, "run seed")
		pop    = flag.Int("pop", 24, "population size (all three populations)")
		budget = flag.Int("budget", 6000, "bottom-level chain evaluations")
		sample = flag.Int("sample", 2, "A-decisions sampled per policy/heuristic evaluation")
		depth  = flag.Int("depth", 1, "middle levels in the chain (1 = tri-level)")
		curves = flag.Bool("curves", false, "print convergence curves as CSV")
	)
	flag.Parse()

	cfg := multilevel.DefaultConfig()
	cfg.Seed = *seed
	cfg.PopSize = *pop
	cfg.Budget = *budget
	cfg.Sample = *sample

	if *depth != 1 {
		runChain(*n, *m, *idx, *depth, cfg)
		return
	}
	tm, err := multilevel.NewTriMarketFromClass(orlib.Class{N: *n, M: *m}, *idx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trilevel:", err)
		os.Exit(1)
	}
	fmt.Printf("tri-level chain on n=%d m=%d (instance %d): A → B → customer\n", *n, *m, *idx)
	t0 := time.Now()
	res, err := multilevel.Run(tm, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trilevel:", err)
		os.Exit(1)
	}
	fmt.Printf("finished: %d generations, %d chain evaluations in %v\n",
		res.Gens, res.Evals, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("A's best revenue:       %.2f\n", res.BestRevenueA)
	fmt.Printf("B's best mean revenue:  %.2f\n", res.BestRevenueB)
	fmt.Printf("customer forecast gap:  %.3f%%\n", res.BestGapPct)
	fmt.Printf("B's pricing policy:     %s\n", res.BestPolicy)
	fmt.Printf("customer heuristic:     %s\n", res.BestCust)
	if *curves {
		fmt.Println("evals,best_revA")
		for i := range res.ACurve.X {
			fmt.Printf("%.0f,%.4f\n", res.ACurve.X[i], res.ACurve.Y[i])
		}
		fmt.Println("evals,best_gap")
		for i := range res.GapCurve.X {
			fmt.Printf("%.0f,%.4f\n", res.GapCurve.X[i], res.GapCurve.Y[i])
		}
	}
}

// runChain drives the generalized D-middle-level chain.
func runChain(n, m, idx, depth int, cfg multilevel.Config) {
	if depth < 0 {
		fmt.Fprintln(os.Stderr, "trilevel: negative depth")
		os.Exit(2)
	}
	in, err := orlib.GenerateCovering(orlib.Class{N: n, M: m}, idx)
	die(err)
	l := n / 10
	if l < 1 {
		l = 1
	}
	groups := make([]int, depth+1)
	for i := range groups {
		groups[i] = l
	}
	cm, err := multilevel.NewChainMarket(in, groups)
	die(err)
	fmt.Printf("%d-level chain on n=%d m=%d: leader + %d middles + customer\n",
		depth+2, n, m, depth)
	t0 := time.Now()
	res, err := multilevel.RunChain(cm, cfg)
	die(err)
	fmt.Printf("finished: %d generations, %d chain evaluations in %v\n",
		res.Gens, res.Evals, time.Since(t0).Round(time.Millisecond))
	for lvl, rev := range res.BestRevenues {
		name := "leader"
		if lvl > 0 {
			name = fmt.Sprintf("middle %d", lvl)
		}
		fmt.Printf("%-10s revenue: %.2f\n", name, rev)
	}
	fmt.Printf("customer forecast gap: %.3f%%\n", res.BestGapPct)
	for lvl, p := range res.BestPolicies {
		fmt.Printf("policy %d: %s\n", lvl+1, p)
	}
	fmt.Printf("customer heuristic: %s\n", res.BestCust)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "trilevel:", err)
		os.Exit(1)
	}
}
