// Command blbench regenerates every table and figure of the paper's
// evaluation section (§V):
//
//	blbench -table 3            # Table III (%-gap per class)
//	blbench -table 4            # Table IV (UL objective values)
//	blbench -fig 4              # Fig 4 (CARBON convergence, n=500 m=30)
//	blbench -fig 5              # Fig 5 (COBRA convergence, same class)
//	blbench -all                # everything, plus the shape report
//	blbench -all -full          # the paper-faithful protocol
//	                            # (30 runs × 50k evals — hours of CPU)
//	blbench -all -csv out/      # also write machine-readable CSVs
//	blbench -fig 4 -svg out/    # render the figures as SVG charts
//	blbench -all -json run.json # persist the raw runs and curves
//	blbench -all -load run.json # re-render from a saved report
//	blbench -taxonomy           # race all four §III architectures
//
// Without -full the quick protocol runs: scaled budgets that preserve
// the qualitative shape of every comparison (see EXPERIMENTS.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"carbon/internal/core"
	"carbon/internal/exp"
	"carbon/internal/orlib"
	"carbon/internal/telemetry"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate one table (3 or 4)")
		fig     = flag.Int("fig", 0, "regenerate one figure (4 or 5)")
		all     = flag.Bool("all", false, "regenerate everything")
		full    = flag.Bool("full", false, "paper-faithful protocol (30 runs × 50k evals)")
		runs    = flag.Int("runs", 0, "override run count")
		workers = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		csvDir  = flag.String("csv", "", "directory for machine-readable CSV output")
		svgDir  = flag.String("svg", "", "directory for SVG figure output")
		jsonOut = flag.String("json", "", "write the raw sweep (runs + curves) as JSON")
		load    = flag.String("load", "", "re-render from a previously saved -json report instead of running")
		taxo    = flag.Bool("taxonomy", false, "race the five bi-level architectures on one class")
		multiC  = flag.Bool("multicustomer", false, "sweep CARBON over 1/2/4 customers on one class")
		quiet   = flag.Bool("q", false, "suppress progress lines")

		trace       = flag.String("trace", "", "write a JSONL trace of every CARBON run to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, expvar and pprof on this address while the sweep runs")
	)
	flag.Parse()

	if *table == 0 && *fig == 0 && !*all && !*taxo && !*multiC {
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C (or SIGTERM) cancels the sweep at the next run/generation
	// boundary instead of leaving budgets to burn.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	s := exp.Quick()
	if *full {
		s = exp.Full()
	}
	if *runs > 0 {
		s.Runs = *runs
	}
	s.Workers = *workers
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg)
		}
	}

	// Live introspection: a JSONL trace of every CARBON run (events are
	// labeled carbon/<class>/run<i>) and an expvar+pprof endpoint with
	// evaluator hot-path metrics aggregated over the whole sweep.
	var traceObs *core.JSONLObserver
	if *trace != "" {
		f, err := os.Create(*trace)
		die(err)
		traceObs = core.NewJSONLObserver(f)
		s.Observer = traceObs
		defer func() { die(traceObs.Close()) }()
	}
	if *metricsAddr != "" {
		s.Metrics = telemetry.NewRegistry()
		addr, stop, err := telemetry.Serve(*metricsAddr, map[string]*telemetry.Registry{"blbench": s.Metrics})
		die(err)
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
	}

	if *taxo {
		cl := orlib.Class{N: 250, M: 10}
		progress(fmt.Sprintf("taxonomy: 4 architectures × %d runs on %v", s.Runs, cl))
		tx, err := exp.RunTaxonomy(cl, s)
		die(err)
		fmt.Println(tx.Render())
	}

	if *multiC {
		cl := orlib.Class{N: 100, M: 5}
		progress(fmt.Sprintf("multi-customer: K in {1,2,4} x %d runs on %v", s.Runs, cl))
		mc, err := exp.RunMultiCustomer(cl, []int{1, 2, 4}, 0.25, s)
		die(err)
		fmt.Println(mc.Render())
	}

	needTables := *all || *table == 3 || *table == 4
	needFigs := *all || *fig == 4 || *fig == 5
	figClass := orlib.Class{N: 500, M: 30} // the class Figs 4/5 use

	var tabs *exp.Tables
	var err error
	if *load != "" {
		f, err := os.Open(*load)
		die(err)
		rep, err := exp.LoadReport(f)
		die(f.Close())
		die(err)
		tabs, err = rep.Tables()
		die(err)
	}
	if needTables {
		if tabs == nil {
			tabs, err = exp.RunTablesContext(ctx, s, progress)
			die(err)
		}
		if *all || *table == 3 {
			fmt.Println(tabs.TableIII())
		}
		if *all || *table == 4 {
			fmt.Println(tabs.TableIV())
		}
		if *all {
			fmt.Println(tabs.ShapeReport())
		}
		if *csvDir != "" {
			die(os.MkdirAll(*csvDir, 0o755))
			die(os.WriteFile(filepath.Join(*csvDir, "tables.csv"), []byte(tabs.CSV()), 0o644))
		}
		if *jsonOut != "" && *load == "" {
			f, err := os.Create(*jsonOut)
			die(err)
			die(exp.BuildReport(s, tabs).Write(f))
			die(f.Close())
		}
	}
	if needFigs {
		var cell *exp.Cell
		// Reuse the sweep's cell when it covered the figure class.
		if tabs != nil {
			for _, c := range tabs.Cells {
				if c.Class == figClass {
					cell = c
					break
				}
			}
		}
		if cell == nil {
			progress(fmt.Sprintf("figures: running class %v", figClass))
			cell, err = exp.RunCellContext(ctx, figClass, s)
			die(err)
		}
		fig4, fig5 := cell.Figures(s.FigPoints)
		if *all || *fig == 4 {
			fmt.Println(fig4.ASCII(64, 10))
		}
		if *all || *fig == 5 {
			fmt.Println(fig5.ASCII(64, 10))
		}
		if *csvDir != "" {
			die(os.MkdirAll(*csvDir, 0o755))
			die(os.WriteFile(filepath.Join(*csvDir, "fig4_carbon.csv"), []byte(fig4.CSV()), 0o644))
			die(os.WriteFile(filepath.Join(*csvDir, "fig5_cobra.csv"), []byte(fig5.CSV()), 0o644))
		}
		if *svgDir != "" {
			die(os.MkdirAll(*svgDir, 0o755))
			die(os.WriteFile(filepath.Join(*svgDir, "fig4_carbon.svg"), []byte(fig4.SVG()), 0o644))
			die(os.WriteFile(filepath.Join(*svgDir, "fig5_cobra.svg"), []byte(fig5.SVG()), 0o644))
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "blbench:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}
