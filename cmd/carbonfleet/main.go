// Command carbonfleet fronts a fleet of carbond workers: it shards
// POST /v1/jobs across them with a pluggable routing policy, admits
// tenants through per-tenant token buckets, health-checks the fleet,
// and re-homes a dead worker's unfinished jobs onto survivors from
// their last mirrored checkpoints — zero job loss, results bit-identical
// to an undisturbed run. It also fronts the networked island model:
// POST /v1/islands spreads one run's islands across the workers.
//
// Usage:
//
//	carbonfleet -workers http://h1:8321,http://h2:8321 [-addr :8322]
//	            [-policy round-robin|least-loaded|weighted] [-weights 1,2]
//	            [-spool fleet-spool] [-probe-every 2s] [-probe-timeout 1s]
//	            [-dead-after 3] [-rate 0] [-burst 0] [-quota tenant=rps,...]
//	            [-spans=true]
//
// Clients speak the same job API as a single carbond — submit, status,
// result, delete — addressed by fleet IDs ("f000001"); which worker
// hosts a job is the router's business and survives failover without
// the client noticing. X-Carbon-Tenant names the admission tenant
// (default "default"); an over-quota submission gets a 429 with a
// Retry-After hint. GET /v1/workers and GET /v1/healthz expose the
// fleet as the router sees it.
//
// The router is also the fleet's observability plane: it federates the
// workers' Prometheus endpoints into GET /metrics/prometheus (counters
// summed, gauges per-worker) and a JSON rollup on /v1/fleet/metrics,
// proxies live job event streams on GET /v1/jobs/{id}/events (SSE,
// resumable via Last-Event-ID, stitched across failover), and
// evaluates -slo rules plus built-in search-dynamics detectors into
// GET /v1/fleet/alerts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"carbon/internal/cluster"
	"carbon/internal/slo"
)

func main() {
	var (
		addr     = flag.String("addr", ":8322", "HTTP listen address for the fleet API")
		workers  = flag.String("workers", "", "comma-separated carbond base URLs (required)")
		weights  = flag.String("weights", "", "comma-separated capacity weights aligned with -workers (weighted policy)")
		policy   = flag.String("policy", "round-robin", "routing policy: round-robin, least-loaded or weighted")
		spool    = flag.String("spool", "fleet-spool", "route spool directory (crash-safe job→worker map)")
		probeE   = flag.Duration("probe-every", 2*time.Second, "worker health-check cadence")
		probeT   = flag.Duration("probe-timeout", time.Second, "per-probe (and mirror request) timeout")
		deadN    = flag.Int("dead-after", 3, "consecutive missed probes before a worker is declared dead")
		rate     = flag.Float64("rate", 0, "default admission rate per tenant, submissions/sec (0 = unlimited)")
		burst    = flag.Int("burst", 0, "admission bucket size (default max(1, rate))")
		quotaS   = flag.String("quota", "", "per-tenant rate overrides, e.g. \"teamA=2,teamB=0.5\"")
		spans    = flag.Bool("spans", true, "write router spans to <spool>/fleet.spans.jsonl")
		sloFile  = flag.String("slo", "", "SLO rules file: one \"<name> <metric> <agg> <op> <threshold> [for <dur>]\" per line")
		drainFor = flag.Duration("drain-timeout", 10*time.Second, "max time to finish in-flight proxying on shutdown")
	)
	flag.Parse()

	if *workers == "" {
		fmt.Fprintln(os.Stderr, "carbonfleet: -workers is required")
		os.Exit(1)
	}
	var ws []float64
	if *weights != "" {
		for _, f := range strings.Split(*weights, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "carbonfleet: -weights:", err)
				os.Exit(1)
			}
			ws = append(ws, v)
		}
	}
	quota := map[string]float64{}
	if *quotaS != "" {
		for _, kv := range strings.Split(*quotaS, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "carbonfleet: -quota entry %q is not tenant=rate\n", kv)
				os.Exit(1)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "carbonfleet: -quota:", err)
				os.Exit(1)
			}
			quota[name] = v
		}
	}

	var rules []slo.Rule
	if *sloFile != "" {
		b, err := os.ReadFile(*sloFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbonfleet: -slo:", err)
			os.Exit(1)
		}
		rules, err = slo.ParseRules(string(b))
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbonfleet: -slo:", err)
			os.Exit(1)
		}
	}

	r, err := cluster.NewRouter(cluster.Options{
		Workers:      strings.Split(*workers, ","),
		Weights:      ws,
		Policy:       *policy,
		SpoolDir:     *spool,
		ProbeEvery:   *probeE,
		ProbeTimeout: *probeT,
		DeadAfter:    *deadN,
		Rate:         *rate,
		Burst:        *burst,
		Quota:        quota,
		Spans:        *spans,
		SLORules:     rules,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonfleet:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbonfleet:", err)
		os.Exit(1)
	}
	// Stdout banner mirrors carbond's so wrappers discover the port.
	fmt.Printf("carbonfleet: serving on %s (spool %s, %d workers, policy %s)\n",
		ln.Addr(), *spool, len(strings.Split(*workers, ",")), *policy)

	srv := &http.Server{Handler: r.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "carbonfleet:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stopSignals()

	// The spool holds every route; workers keep running their jobs. A
	// restarted router reattaches through the spool, so shutdown is just
	// an orderly stop.
	fmt.Fprintln(os.Stderr, "carbonfleet: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if err := r.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "carbonfleet:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "carbonfleet: stopped")
}
