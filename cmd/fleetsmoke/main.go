// Command fleetsmoke is the end-to-end gate for the carbonfleet router
// (run via `make fleet-smoke`). It stands up a real fleet — three
// carbond workers plus a carbonfleet router, all separate processes
// talking over loopback HTTP — and drives it through the cluster
// subsystem's whole contract:
//
//   - Sharding: four jobs round-robin across all three workers; every
//     result must be bit-identical to an in-process reference run.
//   - Admission: an over-quota tenant gets a 429 with a Retry-After
//     hint; its earlier submission within quota runs normally.
//   - Failover: the worker hosting a running job is SIGKILLed. The
//     router must declare it dead, re-home its jobs onto survivors
//     from the mirrored checkpoints, and every job must still finish —
//     the interrupted one resumed (not restarted) and bit-identical to
//     an undisturbed run. Zero job loss.
//   - Revival: the killed worker restarts on its old address and spool;
//     the router must sweep its abandoned job copies so re-homed jobs
//     are never raced by stale incarnations.
//   - Networked islands: POST /v1/islands spreads one run's islands
//     across the three workers; for ring and broadcast topologies the
//     merged record must equal the in-process RunIslands result bit
//     for bit.
//   - Tracing: the failed-over job's trace must span the router and
//     both workers that hosted it (>= 3 span files, one trace ID), and
//     the union of every span file in the fleet must assemble with
//     zero orphans.
//
// Any divergence, hang or lost job exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"

	"carbon/internal/cluster/netmigrate"
	"carbon/internal/core"
	"carbon/internal/serve"
	"carbon/internal/span"
	"carbon/internal/tracestat"
)

// smokeTrace is the caller-side trace context submitted with the victim
// job. Everything the fleet does for that job — routing, both worker
// incarnations, the failover itself — must join this one trace.
const (
	smokeTraceID = "0af7651916cd43dd8448eb211c80319c"
	smokeTP      = "00-" + smokeTraceID + "-b7ad6b7169203331-01"
)

// smokeSpec is fully explicit (no server-side defaulting) so the
// in-process references are guaranteed to run the same config.
func smokeSpec(seed uint64) serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3, Customers: 1,
		Seed: seed, Pop: 16, ULEvals: 1600, LLEvals: 4800,
		PreySample: 2, Workers: 1,
	}
}

// victimSpec is the job that gets interrupted: double the budget, so
// there is ample room between "checkpoint mirrored" and "finished".
func victimSpec(seed uint64) serve.JobSpec {
	s := smokeSpec(seed)
	s.ULEvals *= 2
	s.LLEvals *= 2
	return s
}

func islandSpec() serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3,
		Seed: 7, Pop: 10, ULEvals: 800, LLEvals: 1600,
		PreySample: 2, Workers: 1,
	}
}

func main() {
	flag.Parse()

	work, err := os.MkdirTemp("", "carbon-fleet-smoke-*")
	die(err)
	defer os.RemoveAll(work)

	step("building carbond and carbonfleet")
	carbond := filepath.Join(work, "carbond")
	carbonfleet := filepath.Join(work, "carbonfleet")
	for bin, pkg := range map[string]string{carbond: "carbon/cmd/carbond", carbonfleet: "carbon/cmd/carbonfleet"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	step("computing uninterrupted references (in-process)")
	refVictim := reference(victimSpec(14))
	refA, refB, refC := reference(smokeSpec(11)), reference(smokeSpec(12)), reference(smokeSpec(13))

	// --- Fleet up: three workers, one router ---
	step("starting 3 workers + router")
	var workers []*server
	var workerURLs []string
	for i := 0; i < 3; i++ {
		w := startWorker(carbond, "127.0.0.1:0", filepath.Join(work, fmt.Sprintf("w%d", i)))
		workers = append(workers, w)
		workerURLs = append(workerURLs, "http://"+w.addr)
	}
	fleetSpool := filepath.Join(work, "fleet")
	router := startRouter(carbonfleet, workerURLs, fleetSpool)

	// --- Sharding + admission ---
	step("submitting 4 jobs (round-robin) + quota check")
	vic := submit(router.addr, victimSpec(14), "smoke", smokeTP)
	jobA := submit(router.addr, smokeSpec(11), "", "")
	jobB := submit(router.addr, smokeSpec(12), "", "")
	jobC := submit(router.addr, smokeSpec(13), "metered", "")
	used := map[string]bool{vic.worker: true, jobA.worker: true, jobB.worker: true, jobC.worker: true}
	if len(used) != 3 {
		fatalf("4 submissions landed on %d workers, want all 3 (round-robin)", len(used))
	}
	// The metered tenant's bucket (burst 1, refill ~never) is now empty:
	// the next submission must bounce with a Retry-After hint.
	code, retryAfter := submitExpectingRefusal(router.addr, smokeSpec(13), "metered")
	if code != http.StatusTooManyRequests {
		fatalf("over-quota submission: HTTP %d, want 429", code)
	}
	if retryAfter < 1 {
		fatalf("429 carried Retry-After %d, want >= 1s", retryAfter)
	}
	fmt.Printf("admission OK: tenant \"metered\" got 429 with Retry-After %ds\n", retryAfter)

	// --- Failover: SIGKILL the worker hosting the victim ---
	victimWorker := serverByURL(workers, vic.worker)
	oldJobID := workerJobID(router.addr, vic.id)
	waitGens(router.addr, vic.id, 4)
	waitFile(filepath.Join(fleetSpool, vic.id+".ckpt.json"), "mirrored checkpoint")
	step("SIGKILL " + vic.worker + " (hosting " + vic.id + ", >=4 generations in)")
	die(victimWorker.cmd.Process.Kill())
	_ = victimWorker.cmd.Wait() // non-zero exit expected: it was murdered

	waitHealth(router.addr, "failover", func(h fleetHealth) bool { return h.Failovers >= 1 && h.Healthy == 2 })
	stV := waitDone(router.addr, vic.id)
	if !stV.Resumed {
		fatalf("job %s finished on the survivor without resuming from the mirrored checkpoint", vic.id)
	}
	if w := workerOf(router.addr, vic.id); w == vic.worker {
		fatalf("job %s still routed to the dead worker %s", vic.id, w)
	}
	compare("failed-over", result(router.addr, vic.id), refVictim)
	fmt.Printf("failover OK: %s re-homed, resumed, result bit-identical\n", vic.id)

	step("waiting for the rest of the fleet's jobs (zero loss)")
	for _, j := range []struct {
		id  string
		ref *core.Result
	}{{jobA.id, refA}, {jobB.id, refB}, {jobC.id, refC}} {
		waitDone(router.addr, j.id)
		compare(j.id, result(router.addr, j.id), j.ref)
	}
	fmt.Println("sharding OK: all 4 jobs finished bit-identical, zero loss")

	// --- Revival: restart the dead worker, old copies must be swept ---
	step("restarting the killed worker on its old address")
	victimWorker = startWorker(carbond, victimWorker.addr, victimWorker.spool)
	workers[indexOf(workers, victimWorker.addr)] = victimWorker
	waitHealth(router.addr, "revival", func(h fleetHealth) bool { return h.Healthy == 3 })
	waitSwept(victimWorker.addr, oldJobID)
	fmt.Printf("revival OK: worker back, stale copy of %s swept\n", oldJobID)

	// --- Networked islands across the (whole) fleet ---
	for _, topo := range []core.Topology{core.TopologyRing, core.TopologyBroadcast} {
		step("networked islands, topology " + string(topo))
		ref := referenceIslands(topo)
		rec := runIslands(router.addr, string(topo))
		compareIslands(string(topo), rec, ref)
		fmt.Printf("islands OK: %s topology bit-identical to in-process RunIslands (%d shards)\n",
			topo, len(rec.Shards))
	}

	// --- Orderly shutdown before reading span files ---
	step("shutting the fleet down")
	for _, s := range append([]*server{router}, workers...) {
		die(s.cmd.Process.Signal(syscall.SIGTERM))
		if err := s.cmd.Wait(); err != nil {
			fatalf("%s shutdown: %v (want clean exit 0)", s.addr, err)
		}
	}

	// --- Trace assertions over everything the fleet wrote ---
	step("assembling the cross-node trace")
	checkSpans(work)

	fmt.Println("fleet-smoke PASS")
}

// reference runs the spec uninterrupted in this process.
func reference(spec serve.JobSpec) *core.Result {
	mk, err := spec.Market()
	die(err)
	res, err := core.Run(mk, spec.Config())
	die(err)
	return res
}

func islandConfig(topo core.Topology) core.IslandConfig {
	return core.IslandConfig{Islands: 4, MigrateEvery: 3, Migrants: 1, Topology: topo}
}

func referenceIslands(topo core.Topology) *core.IslandResult {
	spec := islandSpec().Normalize()
	mk, err := spec.Market()
	die(err)
	res, err := core.RunIslands(mk, spec.Config(), islandConfig(topo))
	die(err)
	return res
}

// --- process management ---

type server struct {
	cmd   *exec.Cmd
	addr  string
	spool string
}

// startWorker launches carbond (checkpointing every generation, spans
// on) and parses the bound address from its stdout banner. addr may be
// ":0" for a fresh port or an exact address when reviving a worker.
func startWorker(bin, addr, spool string) *server {
	return start(exec.Command(bin,
		"-addr", addr, "-spool", spool, "-jobs", "1", "-checkpoint-every", "1"), spool)
}

// startRouter launches carbonfleet probing fast enough that failover
// completes in well under a second of worker death.
func startRouter(bin string, workerURLs []string, spool string) *server {
	return start(exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", strings.Join(workerURLs, ","),
		"-spool", spool, "-probe-every", "150ms", "-probe-timeout", "2s",
		"-dead-after", "3", "-quota", "metered=0.0001"), spool)
}

func start(cmd *exec.Cmd, spool string) *server {
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	die(err)
	die(cmd.Start())
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, after, ok := strings.Cut(sc.Text(), "serving on "); ok {
			addr := strings.Fields(after)[0]
			go func() { // drain the rest so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			waitReachable(addr)
			return &server{cmd: cmd, addr: addr, spool: spool}
		}
	}
	fatalf("%s exited before announcing its address", cmd.Path)
	return nil
}

func waitReachable(addr string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("server on %s never became reachable", addr)
}

func serverByURL(workers []*server, url string) *server {
	for _, w := range workers {
		if "http://"+w.addr == url {
			return w
		}
	}
	fatalf("no worker behind %s", url)
	return nil
}

func indexOf(workers []*server, addr string) int {
	for i, w := range workers {
		if w.addr == addr {
			return i
		}
	}
	fatalf("no worker on %s", addr)
	return -1
}

// --- fleet API client helpers ---

type submission struct {
	id     string // fleet ID
	worker string // base URL of the worker it landed on
}

func submit(addr string, spec serve.JobSpec, tenant, traceparent string) submission {
	var buf bytes.Buffer
	die(json.NewEncoder(&buf).Encode(spec))
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/jobs", &buf)
	die(err)
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Carbon-Tenant", tenant)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		fatalf("submit (seed %d): HTTP %d: %s", spec.Seed, resp.StatusCode, body)
	}
	var st serve.Status
	die(json.NewDecoder(resp.Body).Decode(&st))
	sub := submission{id: st.ID, worker: resp.Header.Get("X-Carbon-Worker")}
	fmt.Printf("submitted %s (seed %d) -> %s\n", sub.id, spec.Seed, sub.worker)
	return sub
}

// submitExpectingRefusal posts a job and returns the refusal status
// code plus the Retry-After hint in whole seconds (0 when absent).
func submitExpectingRefusal(addr string, spec serve.JobSpec, tenant string) (int, int) {
	var buf bytes.Buffer
	die(json.NewEncoder(&buf).Encode(spec))
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/jobs", &buf)
	die(err)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Carbon-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	die(err)
	defer resp.Body.Close()
	var after int
	fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &after)
	return resp.StatusCode, after
}

func getStatus(addr, id string) (serve.Status, error) {
	var st serve.Status
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %s: HTTP %d", id, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitGens blocks until the job has completed at least n generations,
// failing loudly if it finishes first (the victim budget is sized so
// that cannot happen on any plausible machine).
func waitGens(addr, id string, n int) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		if st.State == serve.StateDone {
			fatalf("job %s finished before reaching %d generations — budget too small to interrupt", id, n)
		}
		if st.Gens >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	fatalf("job %s never reached generation %d", id, n)
}

// waitDone polls through the router until the job lands. Transient
// proxy errors (the hosting worker just died; failover is in flight)
// are expected and retried — the whole point is that the job outlives
// them.
func waitDone(addr, id string) serve.Status {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		switch st.State {
		case serve.StateDone:
			return st
		case serve.StateFailed, serve.StateCanceled, serve.StateDead:
			fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("job %s never finished", id)
	return serve.Status{}
}

func result(addr, id string) *serve.ResultRecord {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id + "/result")
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	var rec serve.ResultRecord
	die(json.NewDecoder(resp.Body).Decode(&rec))
	return &rec
}

type fleetHealth struct {
	OK        bool `json:"ok"`
	Healthy   int  `json:"healthy"`
	Routes    int  `json:"routes"`
	Failovers int  `json:"failovers"`
}

func waitHealth(addr, what string, ok func(fleetHealth) bool) {
	deadline := time.Now().Add(30 * time.Second)
	var h fleetHealth
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err == nil && ok(h) {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	fatalf("router never reached the %s state (last: %+v)", what, h)
}

type routeEntry struct {
	FleetID string `json:"fleet_id"`
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
}

func routeFor(addr, fleetID string) routeEntry {
	resp, err := http.Get("http://" + addr + "/v1/jobs")
	die(err)
	defer resp.Body.Close()
	var routes []routeEntry
	die(json.NewDecoder(resp.Body).Decode(&routes))
	for _, rt := range routes {
		if rt.FleetID == fleetID {
			return rt
		}
	}
	fatalf("router has no route for %s", fleetID)
	return routeEntry{}
}

func workerJobID(addr, fleetID string) string { return routeFor(addr, fleetID).JobID }
func workerOf(addr, fleetID string) string    { return routeFor(addr, fleetID).Worker }

// waitSwept waits until the revived worker's stale copy of a re-homed
// job has been canceled (or deleted) by the router's orphan sweep.
func waitSwept(workerAddr, jobID string) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + workerAddr + "/v1/jobs/" + jobID)
		if err == nil {
			var st serve.Status
			code := resp.StatusCode
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if code == http.StatusNotFound {
				return
			}
			if derr == nil && st.State == serve.StateCanceled {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatalf("revived worker still runs the stale copy of %s (never swept)", jobID)
}

func waitFile(path, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("%s never appeared at %s", what, path)
}

// --- bit-identity assertions ---

func compare(label string, rec *serve.ResultRecord, want *core.Result) {
	if rec.Gens != want.Gens || rec.ULEvals != want.ULEvals || rec.LLEvals != want.LLEvals {
		fatalf("%s: budget trace diverged: got %d gens %d/%d, want %d gens %d/%d",
			label, rec.Gens, rec.ULEvals, rec.LLEvals, want.Gens, want.ULEvals, want.LLEvals)
	}
	if rec.BestRevenue != want.Best.Revenue || rec.BestGapPct != want.Best.GapPct ||
		rec.BestTree != want.Best.TreeStr {
		fatalf("%s: best pairing diverged:\n got  (%v, %q, %v)\n want (%v, %q, %v)",
			label, rec.BestRevenue, rec.BestTree, rec.BestGapPct,
			want.Best.Revenue, want.Best.TreeStr, want.Best.GapPct)
	}
	if !reflect.DeepEqual(rec.BestPrice, want.Best.Price) {
		fatalf("%s: best price vector diverged", label)
	}
}

func runIslands(addr, topo string) *netmigrate.IslandRecord {
	job := netmigrate.IslandJob{
		Spec: islandSpec(), Islands: 4, MigrateEvery: 3, Migrants: 1, Topology: topo,
	}
	var buf bytes.Buffer
	die(json.NewEncoder(&buf).Encode(job))
	resp, err := http.Post("http://"+addr+"/v1/islands", "application/json", &buf)
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		fatalf("islands %s: HTTP %d: %s", topo, resp.StatusCode, body)
	}
	rec := new(netmigrate.IslandRecord)
	die(json.NewDecoder(resp.Body).Decode(rec))
	return rec
}

func compareIslands(topo string, rec *netmigrate.IslandRecord, ref *core.IslandResult) {
	if rec.BestRevenue != ref.Best.Revenue || rec.BestGapPct != ref.Best.GapPct ||
		rec.BestTree != ref.Best.TreeStr || rec.Simplified != ref.Best.Simplified ||
		rec.BestIsland != ref.BestIsland || rec.Migrations != ref.Migrations ||
		!reflect.DeepEqual(rec.BestPrice, ref.Best.Price) {
		fatalf("islands %s: merged record diverged:\n got  %+v\n want best %+v island %d migrations %d",
			topo, rec, ref.Best, ref.BestIsland, ref.Migrations)
	}
	if len(rec.PerIsland) != len(ref.PerIsland) {
		fatalf("islands %s: %d island records, want %d", topo, len(rec.PerIsland), len(ref.PerIsland))
	}
	for i, r := range rec.PerIsland {
		w := ref.PerIsland[i]
		if r.Gens != w.Gens || r.ULEvals != w.ULEvals || r.LLEvals != w.LLEvals ||
			r.BestRevenue != w.Best.Revenue || r.BestGapPct != w.Best.GapPct ||
			r.BestTree != w.Best.TreeStr || r.Simplified != w.Best.Simplified ||
			!reflect.DeepEqual(r.BestPrice, w.Best.Price) ||
			!reflect.DeepEqual(r.ULCurveY, w.ULCurve.Y) || !reflect.DeepEqual(r.GapCurveY, w.GapCurve.Y) {
			fatalf("islands %s: island %d diverged across the network", topo, i)
		}
	}
}

// --- trace assertions ---

// checkSpans reads every span file the fleet wrote, asserts the victim
// job's trace crossed at least three of them (router + both hosting
// workers), includes the failover span, and that the union of all
// records assembles into parent-linked trees with zero orphans.
func checkSpans(work string) {
	var files []string
	die(filepath.WalkDir(work, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".spans.jsonl") {
			files = append(files, path)
		}
		return err
	}))
	if len(files) == 0 {
		fatalf("the fleet wrote no span files under %s", work)
	}

	var union bytes.Buffer
	inTrace, sawFailover := 0, false
	for _, f := range files {
		recs, _, err := span.ReadFile(f) // lenient: the SIGKILLed worker may have a torn tail
		die(err)
		hit := false
		for _, r := range recs {
			if r.Trace == smokeTraceID {
				hit = true
				if r.Name == "fleet.failover" {
					sawFailover = true
				}
			}
			b, err := json.Marshal(r)
			die(err)
			union.Write(b)
			union.WriteByte('\n')
		}
		if hit {
			inTrace++
		}
	}
	if inTrace < 3 {
		fatalf("victim trace %s appears in %d span files, want >= 3 (router + both hosting workers)", smokeTraceID, inTrace)
	}
	if !sawFailover {
		fatalf("no fleet.failover span joined trace %s", smokeTraceID)
	}
	tree, err := tracestat.LoadSpans(&union)
	die(err)
	if len(tree.Orphans) != 0 {
		var names []string
		for _, o := range tree.Orphans {
			names = append(names, o.Record.Name)
		}
		fatalf("fleet-wide span union has %d orphans (%s) — a hop dropped its parent link",
			len(tree.Orphans), strings.Join(names, ", "))
	}
	fmt.Printf("tracing OK: victim trace in %d files, failover span linked, %d traces, zero orphans\n",
		inTrace, len(tree.Traces))
}

func step(s string) { fmt.Println("==> " + s) }

func die(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleet-smoke FAIL: "+format+"\n", args...)
	os.Exit(1)
}
