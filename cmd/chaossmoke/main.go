// Command chaossmoke is the fault-injection gate for carbond (run via
// `make chaos-smoke`). Where serve-smoke proves crash recovery on a
// healthy evaluator, chaossmoke turns the dials the other way: the
// server runs with injected LP-solve failures, torn checkpoint writes
// and torn spool writes — and is SIGKILLed mid-run on top — and must
// still deliver:
//
//  1. zero accepted jobs lost: every submitted job is listed and
//     reaches a terminal state across restarts;
//  2. bit-identical survivors: every job that completes matches the
//     fault-free in-process reference exactly — retries resume from the
//     last clean checkpoint, so faults cost time, never bits;
//  3. honest dead-letters: under a permanent outage a job dies after
//     exactly -max-attempts attempts, reports them, and a restarted
//     server still knows it is dead instead of re-running it.
//
// Any divergence, hang, lost job or silent retry loop exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"

	"carbon/internal/core"
	"carbon/internal/serve"
)

// chaosFaults is the phase-1 injection spec: a finite LP outage opening
// mid-run (limit 6, so retries can outlast it), two torn checkpoint
// writes and one torn spool write. Finite windows are the point — the
// server must absorb them, not merely report them.
const chaosFaults = "lp.solve:every=1,after=30,limit=6;" +
	"checkpoint.write:every=4,limit=2;" +
	"spool.write:every=3,limit=1"

// smokeSpec mirrors servesmoke's: fully explicit, ~100 generations on
// the 60x5 class.
func smokeSpec(seed uint64) serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3, Customers: 1,
		Seed: seed, Pop: 16, ULEvals: 1600, LLEvals: 4800,
		PreySample: 2, Workers: 1,
	}
}

// tinySpec finishes in well under a second — sized for the dead-letter
// phase, where the job never completes anyway.
func tinySpec(seed uint64) serve.JobSpec {
	s := smokeSpec(seed)
	s.ULEvals, s.LLEvals = 160, 480
	return s
}

func main() {
	carbond := flag.String("carbond", "", "prebuilt carbond binary (default: go build it)")
	flag.Parse()

	work, err := os.MkdirTemp("", "carbon-chaos-*")
	die(err)
	defer os.RemoveAll(work)

	bin := *carbond
	if bin == "" {
		bin = filepath.Join(work, "carbond")
		step("building carbond")
		out, err := exec.Command("go", "build", "-o", bin, "carbon/cmd/carbond").CombinedOutput()
		if err != nil {
			fatalf("go build carbond: %v\n%s", err, out)
		}
	}

	step("computing fault-free reference runs (in-process)")
	refA := reference(smokeSpec(7))
	refB := reference(smokeSpec(8))

	// --- Phase 1: finite faults + SIGKILL; both jobs must survive ---
	step("phase 1: LP outage + torn writes + SIGKILL")
	spool := filepath.Join(work, "spool")
	chaosArgs := []string{
		"-fault", chaosFaults, "-fault-seed", "1",
		"-max-attempts", "10", "-retry-backoff", "25ms",
	}
	srv := start(bin, spool, chaosArgs...)
	idA := submit(srv.addr, smokeSpec(7))
	idB := submit(srv.addr, smokeSpec(8))
	waitGens(srv.addr, idA, 4)
	step("SIGKILL at >=4 generations")
	die(srv.cmd.Process.Kill())
	_ = srv.cmd.Wait() // non-zero exit expected: it was murdered
	mustExist(filepath.Join(spool, idA+".job.json"))
	mustExist(filepath.Join(spool, idB+".job.json"))

	step("restarting into the same fault schedule")
	srv = start(bin, spool, chaosArgs...)
	if got := listIDs(srv.addr); !got[idA] || !got[idB] {
		fatalf("accepted jobs lost across the crash: have %v, want %s and %s", got, idA, idB)
	}
	stA := waitDone(srv.addr, idA)
	stB := waitDone(srv.addr, idB)
	for _, st := range []serve.Status{stA, stB} {
		if st.Attempts < 1 {
			fatalf("job %s reports %d attempts — retry accounting lost", st.ID, st.Attempts)
		}
	}
	compare("chaos-survivor A", result(srv.addr, idA), refA)
	compare("chaos-survivor B", result(srv.addr, idB), refB)
	fmt.Println("phase 1 OK: zero jobs lost, both survivors bit-identical")

	die(srv.cmd.Process.Signal(syscall.SIGTERM))
	if err := srv.cmd.Wait(); err != nil {
		fatalf("drain exit after phase 1: %v (want clean exit 0)", err)
	}

	// --- Phase 2: permanent outage → honest dead-letter ---
	step("phase 2: permanent LP outage, dead-letter after 3 attempts")
	spool2 := filepath.Join(work, "spool2")
	srv = start(bin, spool2,
		"-fault", "lp.solve:every=1",
		"-max-attempts", "3", "-retry-backoff", "10ms")
	idC := submit(srv.addr, tinySpec(9))
	stC := waitState(srv.addr, idC, serve.StateDead)
	if stC.Attempts != 3 {
		fatalf("dead job %s reports %d attempts, want 3", idC, stC.Attempts)
	}
	if stC.Error == "" {
		fatalf("dead job %s carries no error", idC)
	}
	if code := resultCode(srv.addr, idC); code != http.StatusConflict {
		fatalf("result of a dead job: HTTP %d, want 409", code)
	}
	die(srv.cmd.Process.Signal(syscall.SIGTERM))
	if err := srv.cmd.Wait(); err != nil {
		fatalf("drain exit after dead-letter: %v", err)
	}

	step("restarting fault-free: the dead job must stay dead")
	srv = start(bin, spool2)
	got, err := getStatus(srv.addr, idC)
	die(err)
	if got.State != serve.StateDead || got.Attempts != 3 || got.Error == "" {
		fatalf("recovered dead job: state %s, attempts %d, error %q — want dead/3/non-empty",
			got.State, got.Attempts, got.Error)
	}
	fmt.Println("phase 2 OK: dead-lettered after 3 attempts, state survives restart")

	die(srv.cmd.Process.Signal(syscall.SIGTERM))
	if err := srv.cmd.Wait(); err != nil {
		fatalf("final shutdown: %v", err)
	}
	fmt.Println("chaos-smoke PASS")
}

// reference runs the spec uninterrupted and fault-free in this process.
func reference(spec serve.JobSpec) *core.Result {
	mk, err := spec.Market()
	die(err)
	res, err := core.Run(mk, spec.Config())
	die(err)
	return res
}

type server struct {
	cmd  *exec.Cmd
	addr string
}

// start launches carbond on an ephemeral port and parses the bound
// address from its stdout banner.
func start(bin, spool string, extra ...string) *server {
	args := append([]string{
		"-addr", "127.0.0.1:0", "-spool", spool, "-jobs", "1", "-checkpoint-every", "1"},
		extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	die(err)
	die(cmd.Start())
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, after, ok := strings.Cut(line, "serving on "); ok {
			addr := strings.Fields(after)[0]
			go func() { // drain the rest so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			waitHealthy(addr)
			return &server{cmd: cmd, addr: addr}
		}
	}
	fatalf("carbond exited before announcing its address")
	return nil
}

func waitHealthy(addr string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/jobs")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("carbond on %s never became healthy", addr)
}

func submit(addr string, spec serve.JobSpec) string {
	var buf bytes.Buffer
	die(json.NewEncoder(&buf).Encode(spec))
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", &buf)
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var st serve.Status
	die(json.NewDecoder(resp.Body).Decode(&st))
	fmt.Printf("submitted %s (seed %d)\n", st.ID, spec.Seed)
	return st.ID
}

func getStatus(addr, id string) (serve.Status, error) {
	var st serve.Status
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func listIDs(addr string) map[string]bool {
	resp, err := http.Get("http://" + addr + "/v1/jobs")
	die(err)
	defer resp.Body.Close()
	var sts []serve.Status
	die(json.NewDecoder(resp.Body).Decode(&sts))
	ids := make(map[string]bool, len(sts))
	for _, st := range sts {
		ids[st.ID] = true
	}
	return ids
}

// waitGens blocks until the job has completed at least n generations.
// Retries may reset Gens between polls; any sighting of n suffices.
func waitGens(addr, id string, n int) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		if st.State == serve.StateDone {
			fatalf("job %s finished before reaching %d generations — budgets too small to interrupt", id, n)
		}
		if st.Gens >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	fatalf("job %s never reached generation %d", id, n)
}

func waitState(addr, id string, want serve.State) serve.Status {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			fatalf("job %s ended %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("job %s never reached %s", id, want)
	return serve.Status{}
}

func waitDone(addr, id string) serve.Status {
	return waitState(addr, id, serve.StateDone)
}

func result(addr, id string) *serve.ResultRecord {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id + "/result")
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("result: HTTP %d", resp.StatusCode)
	}
	var rec serve.ResultRecord
	die(json.NewDecoder(resp.Body).Decode(&rec))
	return &rec
}

func resultCode(addr, id string) int {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id + "/result")
	die(err)
	resp.Body.Close()
	return resp.StatusCode
}

// compare asserts the served result is bit-identical to the fault-free
// reference — the strongest possible statement that retries recovered
// the run rather than papering over a degraded one.
func compare(label string, rec *serve.ResultRecord, want *core.Result) {
	if rec.Gens != want.Gens || rec.ULEvals != want.ULEvals || rec.LLEvals != want.LLEvals {
		fatalf("%s: budget trace diverged: got %d gens %d/%d, want %d gens %d/%d",
			label, rec.Gens, rec.ULEvals, rec.LLEvals, want.Gens, want.ULEvals, want.LLEvals)
	}
	if rec.BestRevenue != want.Best.Revenue || rec.BestGapPct != want.Best.GapPct ||
		rec.BestTree != want.Best.TreeStr {
		fatalf("%s: best pairing diverged:\n got  (%v, %q, %v)\n want (%v, %q, %v)",
			label, rec.BestRevenue, rec.BestTree, rec.BestGapPct,
			want.Best.Revenue, want.Best.TreeStr, want.Best.GapPct)
	}
	if !reflect.DeepEqual(rec.BestPrice, want.Best.Price) {
		fatalf("%s: best price vector diverged", label)
	}
	if !reflect.DeepEqual(rec.ULCurveX, want.ULCurve.X) || !reflect.DeepEqual(rec.ULCurveY, want.ULCurve.Y) ||
		!reflect.DeepEqual(rec.GapCurveX, want.GapCurve.X) || !reflect.DeepEqual(rec.GapCurveY, want.GapCurve.Y) {
		fatalf("%s: convergence curves diverged", label)
	}
	fmt.Printf("%s: %d gens, best F %.4f, gap %.4f%% — exact match\n",
		label, rec.Gens, rec.BestRevenue, rec.BestGapPct)
}

func mustExist(path string) {
	if _, err := os.Stat(path); err != nil {
		fatalf("expected spool file: %v", err)
	}
}

func step(msg string) { fmt.Println("== " + msg) }

func die(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaossmoke: "+format+"\n", args...)
	os.Exit(1)
}
