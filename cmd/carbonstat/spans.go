package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"carbon/internal/span"
	"carbon/internal/tracestat"
)

// runSpans is the `-spans` mode: per-job waterfall and critical-path
// breakdown from <id>.spans.jsonl files, plus a cross-job phase table
// when more than one file is given. Returns the number of defects
// (orphan spans) found, so the caller can exit non-zero on a damaged
// trace.
func runSpans(paths []string) (orphans int) {
	trees := make([]*tracestat.SpanTree, 0, len(paths))
	for _, path := range paths {
		tree, err := tracestat.LoadSpansFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		if tree.Truncated {
			fmt.Fprintf(os.Stderr, "carbonstat: warning: %s is tail-truncated (writer was killed mid-line)\n", path)
		}
		printSpanTree(path, tree)
		orphans += len(tree.Orphans)
		trees = append(trees, tree)
	}
	if len(trees) > 1 {
		fmt.Printf("== cross-job phases (%d traces) ==\n", len(trees))
		printPhaseTable(tracestat.SpanPhases(trees...))
	}
	return orphans
}

func printSpanTree(path string, t *tracestat.SpanTree) {
	fmt.Printf("== %s ==\n", path)
	if t.Len() == 0 {
		fmt.Println("(empty span file)")
		return
	}
	wall := time.Duration(t.WallNS())
	fmt.Printf("trace %s  spans %d  wall %s\n", strings.Join(t.Traces, ","), t.Len(), fmtDur(wall))

	// Retry timeline: one row per attempt, stitched across restarts.
	if atts := t.Attempts(); len(atts) > 0 {
		base := t.Roots[0].Record.StartNS
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ATTEMPT\tSTART\tDURATION\tGENS\tFLAGS\tERROR")
		for _, a := range atts {
			var flags []string
			if a.Resumed {
				flags = append(flags, "resumed")
			}
			if a.Remote {
				flags = append(flags, "restarted-process")
			}
			if a.Open {
				flags = append(flags, "OPEN")
			}
			fl := strings.Join(flags, ",")
			if fl == "" {
				fl = "-"
			}
			errStr := a.Error
			if errStr == "" {
				errStr = "-"
			}
			fmt.Fprintf(w, "%d\t+%s\t%s\t%d\t%s\t%s\n",
				a.Number, fmtDur(time.Duration(a.StartNS-base)),
				fmtDur(time.Duration(a.EndNS-a.StartNS)), a.Gens, fl, errStr)
		}
		w.Flush()
	}

	// Where the time went, deepest span wins: queue vs compute vs io vs
	// backoff, plus unattributed gaps (time no span claims — e.g. the
	// stretch a crashed incarnation was dead).
	b := t.Breakdown()
	kinds := make([]string, 0, len(b.ByKind))
	for k := range b.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return b.ByKind[kinds[i]] > b.ByKind[kinds[j]] })
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KIND\tTIME\t%WALL")
	for _, k := range kinds {
		fmt.Fprintf(w, "%s\t%s\t%.1f%%\n", k, fmtDur(b.ByKind[k]), pct(b.ByKind[k], wall))
	}
	if gap := b.Wall - b.Covered; gap > 0 {
		fmt.Fprintf(w, "(untracked)\t%s\t%.1f%%\n", fmtDur(gap), pct(gap, wall))
	}
	w.Flush()

	// The chain of spans that gated completion.
	fmt.Println("critical path:")
	base := t.Roots[0].Record.StartNS
	for i, n := range t.CriticalPath() {
		open := ""
		if n.Open {
			open = "  (open)"
		}
		fmt.Printf("  %s%s  +%s  %s%s\n",
			strings.Repeat("· ", i), n.Record.Name,
			fmtDur(time.Duration(n.Record.StartNS-base)), fmtDur(n.Duration()), open)
	}

	fmt.Println("phases:")
	printPhaseTable(tracestat.SpanPhases(t))

	for _, o := range t.Orphans {
		fmt.Printf("!! orphan span %s (%s): parent %s missing from file\n",
			o.Record.Span, o.Record.Name, o.Record.Parent)
	}
}

func printPhaseTable(phases []tracestat.SpanPhase) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PHASE\tKIND\tCOUNT\tP50\tP90\tMAX\tTOTAL")
	for _, p := range phases {
		kind := p.Kind
		if kind == "" {
			kind = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			p.Name, kind, p.Count, fmtDur(p.P50), fmtDur(p.P90), fmtDur(p.Max), fmtDur(p.Total))
	}
	w.Flush()
}

func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// fmtDur trims time.Duration's default rendering to three significant
// digits — span tables are for eyeballing ratios, not nanosecond hex.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}

// selfCheckSpans exercises the span analyzer end to end on a synthetic
// trace emitted through the real tracer: announce/end dedup, tree
// linkage, critical path, breakdown conservation, orphan detection.
// Wired into runSelfCheck so `carbonstat -selfcheck` (and `make check`)
// catches schema drift between span and tracestat.
func selfCheckSpans() error {
	col := &span.Collector{}
	tr := span.New(col)
	root := tr.Start(span.Context{}, "job").Kind(span.KindCompute).Announce()
	q := tr.Start(root.Context(), "queue.wait").Kind(span.KindQueue)
	q.End()
	att := tr.Start(root.Context(), "attempt").Kind(span.KindCompute).Attr("attempt", 1).Announce()
	for g := 1; g <= 3; g++ {
		gen := tr.Start(att.Context(), "gen").Kind(span.KindCompute).Attr("gen", g)
		lp := tr.Start(gen.Context(), "lp.solve").Kind(span.KindCompute)
		lp.End()
		gen.End()
	}
	att.End()
	root.End()

	tree := spanTreeFromRecords(col.Records())
	if tree.Len() != 9 {
		return fmt.Errorf("span tree has %d spans, want 9 (announce/end not deduped?)", tree.Len())
	}
	if len(tree.Roots) != 1 || len(tree.Orphans) != 0 || len(tree.Traces) != 1 {
		return fmt.Errorf("span tree shape wrong: roots=%d orphans=%d traces=%d",
			len(tree.Roots), len(tree.Orphans), len(tree.Traces))
	}
	if tree.Roots[0].Open {
		return fmt.Errorf("ended root still marked open")
	}
	cp := tree.CriticalPath()
	if len(cp) < 2 || cp[0].Record.Name != "job" {
		return fmt.Errorf("critical path wrong: %d hops", len(cp))
	}
	for i := 1; i < len(cp); i++ {
		if cp[i].Record.Parent != cp[i-1].Record.Span {
			return fmt.Errorf("critical path hop %d not parent-linked", i)
		}
	}
	b := tree.Breakdown()
	if b.Covered > b.Wall || b.Covered <= 0 {
		return fmt.Errorf("breakdown not conserved: covered %v of wall %v", b.Covered, b.Wall)
	}
	var kindSum time.Duration
	for _, d := range b.ByKind {
		kindSum += d
	}
	if kindSum != b.Covered {
		return fmt.Errorf("kind attribution %v != covered %v", kindSum, b.Covered)
	}
	if got := len(tree.Attempts()); got != 1 {
		return fmt.Errorf("attempts = %d, want 1", got)
	}

	// Orphan detection: re-parent one gen onto a span id that is in no
	// record; the analyzer must flag exactly it.
	recs := col.Records()
	for i := range recs {
		if recs[i].Name == "lp.solve" {
			recs[i].Parent = "feedfacefeedface"
			break
		}
	}
	if damaged := spanTreeFromRecords(recs); len(damaged.Orphans) != 1 {
		return fmt.Errorf("orphan not detected: %d", len(damaged.Orphans))
	}
	return nil
}

// spanTreeFromRecords round-trips records through the JSONL encoding so
// the self-check covers the same path `-spans` uses on real files.
func spanTreeFromRecords(recs []span.Record) *tracestat.SpanTree {
	var buf strings.Builder
	we := span.NewWriterExporter(&buf)
	for _, r := range recs {
		we.Export(r)
	}
	tree, err := tracestat.LoadSpans(strings.NewReader(buf.String()))
	if err != nil {
		panic(err)
	}
	return tree
}
