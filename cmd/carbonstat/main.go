// Command carbonstat analyzes carbon.trace JSONL run logs (schema v1
// or v2): per-run summaries with anomaly flags, convergence/diversity
// tables, operator success totals, champion ancestry, and diffs between
// two traces. Tail-truncated traces (a run killed mid-write) load with
// a warning instead of failing.
//
// Usage:
//
//	carbonstat trace.jsonl                  # per-run summary + anomalies
//	carbonstat -table -every 10 trace.jsonl # convergence/diversity table
//	carbonstat -ops trace.jsonl             # operator success totals
//	carbonstat -ancestry trace.jsonl        # champion provenance chain
//	carbonstat -diff old.jsonl new.jsonl    # metric-by-metric comparison
//	carbonstat -run 'label#0' ...           # restrict to one run
//	carbonstat -spans job.spans.jsonl ...   # per-job waterfall / critical path / retry timeline
//	carbonstat -selfcheck                   # exercise the analyzer on synthetic traces
//
// -spans reads the <id>.spans.jsonl files carbond writes next to the
// spool (carbon.spans/v1): per-job attempt timelines stitched across
// restarts, a queue/compute/io/backoff breakdown, the critical path,
// per-phase p50/p90 tables, and — given several files — a cross-job
// phase table. Orphan spans (a dropped record's children) exit 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"carbon/internal/tracestat"
)

func main() {
	var (
		table     = flag.Bool("table", false, "print a convergence/diversity table per run")
		every     = flag.Int("every", 10, "table row spacing in generations (with -table)")
		ops       = flag.Bool("ops", false, "print per-operator success totals per run")
		ancestry  = flag.Bool("ancestry", false, "print the champion's provenance chain per run")
		diff      = flag.Bool("diff", false, "diff two traces (two file arguments)")
		runKey    = flag.String("run", "", "restrict to one run ('label#island')")
		spans     = flag.Bool("spans", false, "analyze span files (<id>.spans.jsonl) instead of run traces")
		selfcheck = flag.Bool("selfcheck", false, "run the built-in analyzer self-check and exit")
	)
	flag.Parse()

	if *selfcheck {
		if err := runSelfCheck(); err != nil {
			fmt.Fprintln(os.Stderr, "carbonstat: self-check FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("carbonstat self-check: ok")
		return
	}

	if *spans {
		if flag.NArg() == 0 {
			fatalf("-spans needs one or more span files")
		}
		if orphans := runSpans(flag.Args()); orphans > 0 {
			fatalf("%d orphan span(s): records were dropped or the file is damaged", orphans)
		}
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			fatalf("-diff needs exactly two trace files")
		}
		if err := diffTraces(flag.Arg(0), flag.Arg(1), *runKey); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: carbonstat [flags] trace.jsonl")
		flag.Usage()
		os.Exit(2)
	}
	f, err := tracestat.LoadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	if f.Truncated {
		fmt.Fprintln(os.Stderr, "carbonstat: warning: trace is tail-truncated (writer was killed mid-line); final partial event dropped")
	}
	runs := selectRuns(f, *runKey)

	switch {
	case *table:
		for _, r := range runs {
			printTable(r, *every)
		}
	case *ops:
		for _, r := range runs {
			printOps(r)
		}
	case *ancestry:
		for _, r := range runs {
			printAncestry(r)
		}
	default:
		printSummaries(runs)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "carbonstat: "+format+"\n", args...)
	os.Exit(1)
}

func selectRuns(f *tracestat.File, key string) []*tracestat.Run {
	if key == "" {
		if len(f.Runs) == 0 {
			fatalf("trace holds no runs")
		}
		return f.Runs
	}
	r := f.Run(key)
	if r == nil {
		keys := make([]string, 0, len(f.Runs))
		for _, run := range f.Runs {
			keys = append(keys, run.Key())
		}
		fatalf("no run %q in trace (have %v)", key, keys)
	}
	return []*tracestat.Run{r}
}

func printSummaries(runs []*tracestat.Run) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "RUN\tGENS\tUL/LL EVALS\tBEST REVENUE\tBEST GAP%\tDIVERSITY\tSIZE\tMIGR\tDONE")
	for _, r := range runs {
		s := r.Summarize()
		div, size := "-", "-"
		if s.HasSearch {
			div = fmt.Sprintf("%.3f", s.FinalDiversity)
			size = fmt.Sprintf("%.1f", s.FinalSizeMean)
		}
		done := "no"
		if s.Done {
			done = "yes"
		}
		fmt.Fprintf(w, "%s\t%d\t%d/%d\t%.4f\t%.4f\t%s\t%s\t%d\t%s\n",
			s.Key, s.Gens, s.ULEvals, s.LLEvals, s.BestRevenue, s.BestGap, div, size, s.Migrations, done)
	}
	w.Flush()
	for _, r := range runs {
		for _, a := range r.Summarize().Anomalies {
			fmt.Printf("!! %s: %s at gen %d: %s\n", r.Key(), a.Kind, a.Gen, a.Detail)
		}
	}
}

func printTable(r *tracestat.Run, every int) {
	fmt.Printf("== %s ==\n", r.Key())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "GEN\tBEST REV\tBEST GAP%\tDIVERSITY\tENTROPY\tSIZE\tGAP P50\tARCH +UL/+GP")
	for _, row := range r.Table(every) {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.3f\t%.3f\t%.1f\t%.4f\t%d/%d\n",
			row.Gen, row.BestRevenue, row.BestGap, row.Diversity, row.Entropy,
			row.SizeMean, row.GapP50, row.ULArchAdds, row.GPArchAdds)
	}
	w.Flush()
}

func printOps(r *tracestat.Run) {
	fmt.Printf("== %s ==\n", r.Key())
	totals := r.OperatorTotals()
	if len(totals) == 0 {
		fmt.Println("(no operator statistics — v1 trace or single generation)")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "OPERATOR\tOFFSPRING\tIMPROVED\tRATE")
	for _, op := range totals {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f%%\n",
			op.Op, op.Count, op.Improved, 100*float64(op.Improved)/float64(op.Count))
	}
	w.Flush()
}

func printAncestry(r *tracestat.Run) {
	fmt.Printf("== %s ==\n", r.Key())
	if r.Done == nil || len(r.Done.Ancestry) == 0 {
		fmt.Println("(no ancestry — v1 trace, unfinished run, or lineage tracking off)")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tGEN\tOP\tFITNESS\tPARENTS\tEXPR")
	for _, rec := range r.Done.Ancestry {
		expr := rec.Expr
		if len(expr) > 60 {
			expr = expr[:57] + "..."
		}
		fmt.Fprintf(w, "%d\t%d\t%s\t%.4f\t%v\t%s\n",
			rec.ID, rec.Gen, rec.Op, rec.Fitness, rec.Parents, expr)
	}
	w.Flush()
}

func diffTraces(pathA, pathB, key string) error {
	fa, err := tracestat.LoadFile(pathA)
	if err != nil {
		return err
	}
	fb, err := tracestat.LoadFile(pathB)
	if err != nil {
		return err
	}
	pick := func(f *tracestat.File, path string) (*tracestat.Run, error) {
		if key != "" {
			if r := f.Run(key); r != nil {
				return r, nil
			}
			return nil, fmt.Errorf("%s: no run %q", path, key)
		}
		if len(f.Runs) == 0 {
			return nil, fmt.Errorf("%s: trace holds no runs", path)
		}
		return f.Runs[0], nil
	}
	ra, err := pick(fa, pathA)
	if err != nil {
		return err
	}
	rb, err := pick(fb, pathB)
	if err != nil {
		return err
	}
	fmt.Printf("A: %s (%s)\nB: %s (%s)\n", pathA, ra.Key(), pathB, rb.Key())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "METRIC\tA\tB\tDELTA")
	for _, row := range tracestat.Diff(ra, rb) {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%+.4f\n", row.Metric, row.A, row.B, row.Delta)
	}
	return w.Flush()
}
