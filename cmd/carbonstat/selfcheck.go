package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"carbon/internal/core"
	"carbon/internal/tracestat"
)

// runSelfCheck exercises the analyzer end to end on synthetic traces:
// v2 parsing with search blocks, v1 backward compatibility, truncated
// tails, anomaly detection (positive and negative), and diffing. It is
// wired into `make check` so a schema drift between core and carbonstat
// fails the build gate, not a user's post-mortem.
func runSelfCheck() error {
	healthy := synthTrace("healthy", 40, false)
	sick := synthTrace("sick", 40, true)

	// v2 round trip: one labeled run, search blocks intact, no anomalies.
	f, err := tracestat.Load(bytes.NewReader(healthy))
	if err != nil {
		return fmt.Errorf("load healthy: %w", err)
	}
	if len(f.Runs) != 1 || f.Truncated {
		return fmt.Errorf("healthy trace parsed as %d runs (truncated=%v)", len(f.Runs), f.Truncated)
	}
	s := f.Runs[0].Summarize()
	if s.Key != "healthy#0" || s.Gens != 40 || !s.HasSearch || !s.Done {
		return fmt.Errorf("healthy summary wrong: %+v", s)
	}
	if len(s.Anomalies) != 0 {
		return fmt.Errorf("healthy run flagged: %+v", s.Anomalies)
	}
	if got := len(f.Runs[0].OperatorTotals()); got == 0 {
		return fmt.Errorf("healthy run has no operator totals")
	}

	// Anomaly detection: the sick trace stagnates, bloats and disengages.
	fs, err := tracestat.Load(bytes.NewReader(sick))
	if err != nil {
		return fmt.Errorf("load sick: %w", err)
	}
	kinds := map[string]bool{}
	for _, a := range fs.Runs[0].Summarize().Anomalies {
		kinds[a.Kind] = true
	}
	for _, want := range []string{"stagnation", "bloat", "disengagement"} {
		if !kinds[want] {
			return fmt.Errorf("sick run not flagged for %s (got %v)", want, kinds)
		}
	}

	// Diff: revenue delta between sick and healthy must be positive.
	var revDelta *tracestat.DiffRow
	for _, row := range tracestat.Diff(fs.Runs[0], f.Runs[0]) {
		if row.Metric == "best_revenue" {
			r := row
			revDelta = &r
		}
	}
	if revDelta == nil || revDelta.Delta <= 0 {
		return fmt.Errorf("diff best_revenue delta wrong: %+v", revDelta)
	}

	// v1 backward compatibility: strip v2 fields, restamp the schema.
	v1 := downgradeToV1(healthy)
	fv1, err := tracestat.Load(bytes.NewReader(v1))
	if err != nil {
		return fmt.Errorf("load v1: %w", err)
	}
	if len(fv1.Runs) != 1 || fv1.Runs[0].HasSearch() || fv1.Runs[0].Done == nil {
		return fmt.Errorf("v1 trace mishandled: runs=%d", len(fv1.Runs))
	}

	// Truncated tail: chop the final line mid-JSON.
	cut := healthy[:len(healthy)-25]
	ft, err := tracestat.Load(bytes.NewReader(cut))
	if err != nil {
		return fmt.Errorf("load truncated: %w", err)
	}
	if !ft.Truncated {
		return fmt.Errorf("torn tail not reported")
	}
	if got := len(ft.Runs[0].Gens); got != 40 {
		return fmt.Errorf("truncated trace kept %d generations, want 40", got)
	}

	// Span analyzer: tree assembly, critical path, breakdown
	// conservation, orphan detection (see spans.go).
	if err := selfCheckSpans(); err != nil {
		return fmt.Errorf("spans: %w", err)
	}
	return nil
}

// synthTrace fabricates a plausible v2 trace for one run. The sick
// variant stagnates after generation 5, triples its mean tree size and
// collapses its gap spread — tripping all three anomaly detectors.
func synthTrace(label string, gens int, sick bool) []byte {
	var buf bytes.Buffer
	obs := core.NewJSONLObserver(&buf)
	for g := 1; g <= gens; g++ {
		rev := 100.0 + float64(g)
		if sick && g > 5 {
			rev = 105
		}
		size := 11.0 + float64(g)*0.05
		spread := 0.4
		if sick {
			size = 11.0 * (1 + float64(g)*0.1)
			spread = 0
		}
		gs := core.GenStats{
			Label: label, Gen: g,
			ULEvals: g * 16, LLEvals: g * 32,
			ULBudget: gens * 16, LLBudget: gens * 32,
			BestRevenue: rev, BestGap: 5.0 / float64(g),
			Search: &core.SearchStats{
				PreyDiversity: 0.5 / float64(g), PreyEntropy: 0.6 / float64(g),
				PredSizeMean: size, PredSizeMax: int(size * 2),
				PredDepthMean: 3.5, PredDepthMax: 7,
				GapP10: 2 - spread/2, GapP50: 2, GapP90: 2 + spread/2,
				GapMin: 1, GapMax: 4,
				ULArchiveAdds: 3, GPArchiveAdds: 2,
				Ops: []core.OperatorStats{
					{Op: "sbx", Count: 10, Improved: 3},
					{Op: "gp_cross", Count: 12, Improved: 4},
				},
			},
		}
		obs.OnGeneration(gs)
	}
	finalRev := 100 + float64(gens)
	if sick {
		finalRev = 105
	}
	obs.OnDone(&core.Result{
		Label: label, Gens: gens,
		ULEvals: gens * 16, LLEvals: gens * 32,
		Best: core.BestPair{Revenue: finalRev, GapPct: 5.0 / float64(gens), TreeStr: "(% (* q d) c)"},
		Ancestry: []core.LineageRecord{
			{ID: 9, Op: "gp_cross", Gen: gens - 1, Parents: []uint64{4, 5}, Expr: "(% (* q d) c)"},
			{ID: 4, Op: "init", Gen: 0},
			{ID: 5, Op: "init", Gen: 0},
		},
	})
	_ = obs.Flush()
	return buf.Bytes()
}

// downgradeToV1 rewrites a v2 trace as its v1 subset: restamps the
// schema and drops the fields v1 never had.
func downgradeToV1(trace []byte) []byte {
	var out bytes.Buffer
	for _, line := range strings.Split(strings.TrimSpace(string(trace)), "\n") {
		var m map[string]json.RawMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			continue
		}
		m["schema"] = json.RawMessage(`"carbon.trace/v1"`)
		if raw, ok := m["gen"]; ok {
			var gm map[string]json.RawMessage
			_ = json.Unmarshal(raw, &gm)
			delete(gm, "search")
			b, _ := json.Marshal(gm)
			m["gen"] = b
		}
		if raw, ok := m["done"]; ok {
			var dm map[string]json.RawMessage
			_ = json.Unmarshal(raw, &dm)
			delete(dm, "ancestry")
			delete(dm, "label")
			delete(dm, "island")
			b, _ := json.Marshal(dm)
			m["done"] = b
		}
		b, _ := json.Marshal(m)
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes()
}
