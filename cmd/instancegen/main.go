// Command instancegen emits synthetic modified-MKP covering instances in
// the OR-library text format — the data side of the paper's §V-A setup.
// Generated files round-trip through the same parser that reads genuine
// OR-library MKP files, so real downloads can replace them untouched.
//
// Usage:
//
//	instancegen -n 100 -m 5 -count 10 [-tightness 0.25] [-seed 7] [-o file]
//	instancegen -classes [-count 1] [-o dir]   # all nine paper classes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"carbon/internal/orlib"
	"carbon/internal/rng"
)

func main() {
	var (
		n         = flag.Int("n", 100, "variables (bundles)")
		m         = flag.Int("m", 5, "constraints (services)")
		count     = flag.Int("count", 1, "instances per class")
		tightness = flag.Float64("tightness", orlib.DefaultTightness, "requirement fraction of row sums")
		seed      = flag.Uint64("seed", 7, "generator seed")
		out       = flag.String("o", "", "output file (or directory with -classes); default stdout")
		classes   = flag.Bool("classes", false, "emit all nine paper classes")
	)
	flag.Parse()

	if *classes {
		dir := *out
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			die(err)
		}
		for _, cl := range orlib.PaperClasses {
			problems, err := generate(cl.N, cl.M, *count, *tightness, *seed)
			die(err)
			path := filepath.Join(dir, fmt.Sprintf("cover_%s.txt", cl))
			f, err := os.Create(path)
			die(err)
			die(orlib.WriteMKP(f, problems))
			die(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %s (%d instances)\n", path, *count)
		}
		return
	}

	problems, err := generate(*n, *m, *count, *tightness, *seed)
	die(err)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		die(err)
		defer f.Close()
		w = f
	}
	die(orlib.WriteMKP(w, problems))
}

// generate builds count feasible covering instances of one class,
// re-drawing on the (rare) empty-search-space rejection.
func generate(n, m, count int, tightness float64, seed uint64) ([]orlib.MKP, error) {
	r := rng.New(seed + uint64(n)*31 + uint64(m))
	problems := make([]orlib.MKP, 0, count)
	for len(problems) < count {
		p, err := orlib.GenerateMKP(r, n, m, tightness)
		if err != nil {
			return nil, err
		}
		if _, err := p.ToCovering(); err != nil {
			continue // reject and redraw, like the paper's feasibility check
		}
		problems = append(problems, p)
	}
	return problems, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "instancegen:", err)
		os.Exit(1)
	}
}
