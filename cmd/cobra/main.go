// Command cobra runs the COBRA baseline (Legillon et al., re-implemented
// from the paper's Algorithm 1) on a BCPOP instance class and prints the
// archived results — the comparison column of Tables III/IV.
//
// Usage:
//
//	cobra [-n 100] [-m 5] [-instance 0] [-seed 1] [-pop 100]
//	      [-ulevals 50000] [-llevals 50000] [-phasegens 5] [-workers 0]
//	      [-curves]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"carbon/internal/bcpop"
	"carbon/internal/cobra"
	"carbon/internal/orlib"
	"carbon/internal/telemetry"
)

func main() {
	var (
		n         = flag.Int("n", 100, "number of market bundles")
		m         = flag.Int("m", 5, "number of service constraints")
		idx       = flag.Int("instance", 0, "instance index within the class")
		seed      = flag.Uint64("seed", 1, "run seed")
		pop       = flag.Int("pop", 100, "population and archive size at both levels")
		ulEvals   = flag.Int("ulevals", 50000, "upper-level fitness evaluation budget")
		llEvals   = flag.Int("llevals", 50000, "lower-level fitness evaluation budget")
		phaseGens = flag.Int("phasegens", 5, "generations per improvement phase")
		workers   = flag.Int("workers", 0, "evaluation workers (0 = GOMAXPROCS)")
		curves    = flag.Bool("curves", false, "print convergence curves as CSV")

		metricsAddr = flag.String("metrics-addr", "", "serve expvar and pprof on this address while the run is live")
	)
	flag.Parse()

	if *metricsAddr != "" {
		// The COBRA baseline is not instrumented with counters, but the
		// process-level endpoint (pprof profiles, expvar) still applies.
		addr, stop, err := telemetry.Serve(*metricsAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cobra:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/debug/pprof (also /debug/vars)\n", addr)
	}

	mk, err := bcpop.NewMarketFromClass(orlib.Class{N: *n, M: *m}, *idx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobra:", err)
		os.Exit(1)
	}
	cfg := cobra.DefaultConfig()
	cfg.Seed = *seed
	cfg.ULPopSize, cfg.LLPopSize = *pop, *pop
	cfg.ULArchiveSize, cfg.LLArchiveSize = *pop, *pop
	cfg.ULEvalBudget, cfg.LLEvalBudget = *ulEvals, *llEvals
	cfg.PhaseGens = *phaseGens
	cfg.Workers = *workers

	fmt.Printf("COBRA on class n=%d m=%d (instance %d, L=%d leader bundles)\n",
		*n, *m, *idx, mk.Leaders())
	t0 := time.Now()
	res, err := cobra.Run(mk, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cobra:", err)
		os.Exit(1)
	}
	fmt.Printf("finished: %d generations, %d UL evals, %d LL evals in %v\n",
		res.Gens, res.ULEvals, res.LLEvals, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("best UL objective (revenue):   %.2f\n", res.BestRevenue)
	fmt.Printf("best archived LL cost:         %.2f\n", res.BestLLCost)
	fmt.Printf("gap of best archived basket:   %.3f%%\n", res.BestGapPct)
	fmt.Printf("best gap anywhere in archive:  %.3f%%\n", res.MinGapPct)
	if *curves {
		fmt.Println("evals,best_F")
		for i := range res.ULCurve.X {
			fmt.Printf("%.0f,%.4f\n", res.ULCurve.X[i], res.ULCurve.Y[i])
		}
		fmt.Println("evals,best_gap")
		for i := range res.GapCurve.X {
			fmt.Printf("%.0f,%.4f\n", res.GapCurve.X[i], res.GapCurve.Y[i])
		}
	}
}
