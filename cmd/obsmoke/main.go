// Command obsmoke is the end-to-end gate for the fleet observability
// plane (run via `make obs-smoke`). It stands up three carbond workers
// plus a carbonfleet router as separate processes and drives the
// observability contract through a worker SIGKILL:
//
//   - Streaming is free: every job runs with SSE subscribers attached,
//     and every result must be bit-identical to an in-process
//     reference — zero algorithm RNG consumed by streaming. On an
//     undisturbed worker hosting exactly one streamed job, the
//     bcpop.lp_solves counter must equal the reference run's count
//     exactly: fan-out buys no extra LP solves.
//   - SSE resume across failover: the victim job's stream is read
//     partway and dropped; after its worker is SIGKILLed and the job
//     re-homed, reconnecting with Last-Event-ID must replay exactly
//     the missed tail — the stitched sequence has every generation
//     once, no duplicates, no holes, one terminal state.
//   - Metrics federation conserves sums: after the dust settles the
//     router's /metrics/prometheus counter totals must equal the sum
//     of the surviving workers' endpoints, scraped directly.
//   - SLO alerts fire and clear: a rule on unfinished routes fires
//     while jobs run and clears on /v1/fleet/alerts once they finish.
//   - carbontop -once renders the post-mortem fleet (dead worker and
//     all) without error.
//
// Any divergence, hang, duplicated or missing event exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"

	"carbon/internal/core"
	"carbon/internal/serve"
	"carbon/internal/slo"
	"carbon/internal/telemetry"
)

func smokeSpec(seed uint64) serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3, Customers: 1,
		Seed: seed, Pop: 16, ULEvals: 1600, LLEvals: 4800,
		PreySample: 2, Workers: 1,
	}
}

func victimSpec(seed uint64) serve.JobSpec {
	s := smokeSpec(seed)
	s.ULEvals *= 2
	s.LLEvals *= 2
	return s
}

func main() {
	flag.Parse()

	work, err := os.MkdirTemp("", "carbon-obs-smoke-*")
	die(err)
	defer os.RemoveAll(work)

	step("building carbond, carbonfleet and carbontop")
	carbond := filepath.Join(work, "carbond")
	carbonfleet := filepath.Join(work, "carbonfleet")
	carbontop := filepath.Join(work, "carbontop")
	for bin, pkg := range map[string]string{
		carbond: "carbon/cmd/carbond", carbonfleet: "carbon/cmd/carbonfleet", carbontop: "carbon/cmd/carbontop",
	} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	step("computing uninterrupted references (in-process, LP solves counted)")
	refVictim, _ := reference(victimSpec(21))
	refA, lpA := reference(smokeSpec(22))
	refB, _ := reference(smokeSpec(23))

	// The rule fires while any route is unfinished and clears when all
	// jobs land — a deterministic fire-and-clear cycle for the gate.
	rulesPath := filepath.Join(work, "slo.rules")
	die(os.WriteFile(rulesPath, []byte("active carbonfleet_cluster_routes_unfinished value > 0\n"), 0o644))

	step("starting 3 workers + router (slo rules armed)")
	var workers []*server
	var workerURLs []string
	for i := 0; i < 3; i++ {
		w := startWorker(carbond, "127.0.0.1:0", filepath.Join(work, fmt.Sprintf("w%d", i)))
		workers = append(workers, w)
		workerURLs = append(workerURLs, "http://"+w.addr)
	}
	router := startRouter(carbonfleet, workerURLs, filepath.Join(work, "fleet"), rulesPath)

	step("submitting 3 jobs, one per worker, streams attached")
	vic := submit(router.addr, victimSpec(21))
	jobA := submit(router.addr, smokeSpec(22))
	jobB := submit(router.addr, smokeSpec(23))
	used := map[string]bool{vic.worker: true, jobA.worker: true, jobB.worker: true}
	if len(used) != 3 {
		fatalf("3 submissions landed on %d workers, want all 3", len(used))
	}

	// Attach a draining SSE subscriber to every job — the bit-identity
	// checks below then prove streaming perturbs nothing.
	doneA := streamUntilEOF(router.addr, jobA.id)
	doneB := streamUntilEOF(router.addr, jobB.id)

	// Read the victim's stream partway, then drop the connection: the
	// Last-Event-ID resume after failover must replay exactly the rest.
	head, lastID := streamHead(router.addr, vic.id, 10)
	fmt.Printf("victim stream: read %d frames, dropped connection at id %d\n", len(head), lastID)

	step("waiting for the alert to fire (routes unfinished)")
	waitAlert(router.addr, "active", true)

	// --- SIGKILL the victim's worker mid-run ---
	victimWorker := serverByURL(workers, vic.worker)
	waitGens(router.addr, vic.id, 4)
	waitFile(filepath.Join(work, "fleet", vic.id+".ckpt.json"), "mirrored checkpoint")
	step("SIGKILL " + vic.worker + " (hosting " + vic.id + ")")
	die(victimWorker.cmd.Process.Kill())
	_ = victimWorker.cmd.Wait()

	waitHealth(router.addr, "failover", func(h fleetHealth) bool { return h.Failovers >= 1 && h.Healthy == 2 })
	stV := waitDone(router.addr, vic.id)
	if !stV.Resumed {
		fatalf("victim %s did not resume from the mirrored checkpoint", vic.id)
	}
	compare("victim (streamed, failed-over)", result(router.addr, vic.id), refVictim)
	waitDone(router.addr, jobA.id)
	waitDone(router.addr, jobB.id)
	compare("jobA (streamed)", result(router.addr, jobA.id), refA)
	compare("jobB (streamed)", result(router.addr, jobB.id), refB)
	fmt.Println("bit-identity OK: all 3 streamed jobs match their references (zero RNG consumed)")

	step("resuming the victim stream via Last-Event-ID across the failover")
	tail := streamResume(router.addr, vic.id, lastID)
	checkStitched(append(head, tail...), vic.id, lastID, refVictim.Gens)
	fmt.Printf("sse OK: %d+%d frames stitch into gens 1..%d, no duplicates, no holes\n",
		len(head), len(tail), refVictim.Gens)

	// Drain the other two streams (they end with the jobs).
	waitClosed(doneA, "jobA stream")
	waitClosed(doneB, "jobB stream")

	step("checking federation conserves counter sums over the survivors")
	waitAlert(router.addr, "active", false) // all routes done: alert cleared
	fmt.Println("alert OK: fired while running, cleared when the fleet drained")
	time.Sleep(400 * time.Millisecond) // two probe rounds: the federated cache settles
	checkConservation(router.addr, workers, vic.worker)

	// No extra LP solves: jobA's worker hosted exactly that one streamed
	// job, so its counter must equal the reference run's.
	wA := serverByURL(workers, jobA.worker)
	gotLP := counterOn(wA.addr, "carbond_bcpop_lp_solves")
	if gotLP != float64(lpA) {
		fatalf("worker %s ran %v LP solves for the streamed job, reference ran %d — streaming is not free",
			wA.addr, gotLP, lpA)
	}
	fmt.Printf("lp OK: streamed job cost exactly %d LP solves, same as the reference\n", lpA)

	step("carbontop -once renders the post-mortem fleet")
	out, err := exec.Command(carbontop, "-addr", "http://"+router.addr, "-once").CombinedOutput()
	if err != nil {
		fatalf("carbontop -once: %v\n%s", err, out)
	}
	for _, want := range []string{vic.id, "DEAD", "ALERTS"} {
		if !strings.Contains(string(out), want) {
			fatalf("carbontop -once output lacks %q:\n%s", want, out)
		}
	}

	step("shutting the fleet down")
	for _, s := range []*server{router, workers[1], workers[2]} {
		if s.addr == strings.TrimPrefix(vic.worker, "http://") {
			continue
		}
		die(s.cmd.Process.Signal(syscall.SIGTERM))
		if err := s.cmd.Wait(); err != nil {
			fatalf("%s shutdown: %v (want clean exit 0)", s.addr, err)
		}
	}

	fmt.Println("obs-smoke PASS")
}

// reference runs the spec uninterrupted in this process, counting LP
// solves the same way a worker's registry does.
func reference(spec serve.JobSpec) (*core.Result, int64) {
	spec = spec.Normalize()
	mk, err := spec.Market()
	die(err)
	cfg := spec.Config()
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := core.Run(mk, cfg)
	die(err)
	return res, reg.Counter("bcpop.lp_solves").Load()
}

// --- SSE client ---

type frame struct {
	id    uint64
	event string
	data  string
}

// scanFrames reads SSE frames from r, invoking fn per frame; stop when
// fn returns false or the stream ends. Returns the frames fn accepted.
func scanFrames(r *http.Response, fn func(frame) bool) []frame {
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []frame
	var cur frame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
				if !fn(cur) {
					return out
				}
			}
			cur = frame{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return out
}

func openStream(addr, id string, after uint64) *http.Response {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/v1/jobs/"+id+"/events", nil)
	die(err)
	if after > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(after))
	}
	resp, err := http.DefaultClient.Do(req)
	die(err)
	if resp.StatusCode != http.StatusOK {
		fatalf("events %s: HTTP %d", id, resp.StatusCode)
	}
	return resp
}

// streamHead reads n id-bearing frames then drops the connection,
// returning them and the last id seen.
func streamHead(addr, id string, n int) ([]frame, uint64) {
	var last uint64
	got := 0
	frames := scanFrames(openStream(addr, id, 0), func(f frame) bool {
		if f.id > 0 {
			last = f.id
			got++
		}
		return got < n && f.event != "eof"
	})
	if got < n {
		fatalf("victim stream ended after %d frames, wanted %d before dropping", got, n)
	}
	return frames, last
}

// streamResume reconnects with Last-Event-ID and reads to eof.
func streamResume(addr, id string, after uint64) []frame {
	return scanFrames(openStream(addr, id, after), func(f frame) bool { return f.event != "eof" })
}

// streamUntilEOF drains a job's stream in the background; the returned
// channel closes when the eof frame arrives.
func streamUntilEOF(addr, id string) chan struct{} {
	done := make(chan struct{})
	resp := openStream(addr, id, 0)
	go func() {
		defer close(done)
		scanFrames(resp, func(f frame) bool { return f.event != "eof" })
	}()
	return done
}

func waitClosed(ch chan struct{}, what string) {
	select {
	case <-ch:
	case <-time.After(2 * time.Minute):
		fatalf("%s never reached eof", what)
	}
}

// checkStitched asserts head+tail form one seamless stream: ids
// strictly ascending and contiguous at the splice, generations exactly
// 1..wantGens each once, a terminal final state, eof last.
func checkStitched(frames []frame, fleetID string, spliceAt uint64, wantGens int) {
	if len(frames) == 0 || frames[len(frames)-1].event != "eof" {
		fatalf("stitched stream does not end with eof")
	}
	var lastID uint64
	lastGen, gens := 0, 0
	var lastState serve.State
	spliced := false
	for _, f := range frames[:len(frames)-1] {
		if f.event == "dropped" || f.id == 0 {
			fatalf("unexpected gap frame %+v — ring evicted events mid-gate", f)
		}
		var ev serve.Event
		die(json.Unmarshal([]byte(f.data), &ev))
		if ev.Job != fleetID {
			fatalf("event names job %q, want %q", ev.Job, fleetID)
		}
		if f.id != lastID+1 {
			fatalf("ids not contiguous: %d after %d (splice at %d)", f.id, lastID, spliceAt)
		}
		if f.id == spliceAt+1 {
			spliced = true
		}
		lastID = f.id
		switch ev.Type {
		case serve.EventGen:
			if ev.Gen == nil || ev.Gen.Gen != lastGen+1 {
				fatalf("generation sequence broken at %+v after gen %d", ev.Gen, lastGen)
			}
			lastGen = ev.Gen.Gen
			gens++
		case serve.EventState:
			lastState = ev.State
		}
	}
	if !spliced {
		fatalf("resume never crossed the splice point %d", spliceAt)
	}
	if gens != wantGens {
		fatalf("stitched stream carries %d generations, reference ran %d", gens, wantGens)
	}
	if lastState != serve.StateDone {
		fatalf("stitched stream's final state %q, want done", lastState)
	}
}

// --- federation assertions ---

func scrapeFams(url string) []telemetry.Family {
	resp, err := http.Get(url + "/metrics/prometheus")
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	fams, err := telemetry.ParseFamilies(resp.Body)
	die(err)
	return fams
}

func famSum(fams []telemetry.Family, name string) (float64, bool) {
	f := telemetry.FindFamily(fams, name)
	if f == nil {
		return 0, false
	}
	var sum float64
	for _, s := range f.Series {
		sum += s.Value
	}
	return sum, true
}

func counterOn(addr, name string) float64 {
	v, ok := famSum(scrapeFams("http://"+addr), name)
	if !ok {
		fatalf("worker %s has no family %s", addr, name)
	}
	return v
}

// checkConservation scrapes the survivors directly and asserts every
// carbond counter family on the router's federated endpoint totals
// exactly their sum — the dead worker contributes nothing, survivors
// contribute everything.
func checkConservation(routerAddr string, workers []*server, deadURL string) {
	fleet := scrapeFams("http://" + routerAddr)
	var survivors [][]telemetry.Family
	for _, w := range workers {
		if "http://"+w.addr == deadURL {
			continue
		}
		survivors = append(survivors, scrapeFams("http://"+w.addr))
	}
	checked := 0
	for _, f := range fleet {
		if f.Kind != "counter" || !strings.HasPrefix(f.Name, "carbond") {
			continue
		}
		fleetTotal, _ := famSum(fleet, f.Name)
		var workerTotal float64
		for _, fams := range survivors {
			v, _ := famSum(fams, f.Name)
			workerTotal += v
		}
		if fleetTotal != workerTotal {
			fatalf("federated %s = %v, survivors sum to %v — conservation violated", f.Name, fleetTotal, workerTotal)
		}
		checked++
	}
	if checked < 3 {
		fatalf("only %d carbond counter families federated — scrape too thin to trust", checked)
	}
	fmt.Printf("federation OK: %d counter families conserve sums across the kill\n", checked)
}

// --- alert assertions ---

func waitAlert(addr, rule string, firing bool) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/fleet/alerts")
		if err == nil {
			var alerts []slo.Alert
			derr := json.NewDecoder(resp.Body).Decode(&alerts)
			resp.Body.Close()
			if derr == nil {
				got := false
				for _, a := range alerts {
					if a.Rule == rule && a.State == slo.StateFiring {
						got = true
					}
				}
				if got == firing {
					return
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatalf("alert %q never reached firing=%v", rule, firing)
}

// --- process management (same idiom as fleetsmoke) ---

type server struct {
	cmd   *exec.Cmd
	addr  string
	spool string
}

func startWorker(bin, addr, spool string) *server {
	return start(exec.Command(bin,
		"-addr", addr, "-spool", spool, "-jobs", "1", "-checkpoint-every", "1"), spool)
}

func startRouter(bin string, workerURLs []string, spool, rules string) *server {
	return start(exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", strings.Join(workerURLs, ","),
		"-spool", spool, "-probe-every", "150ms", "-probe-timeout", "2s",
		"-dead-after", "3", "-slo", rules), spool)
}

func start(cmd *exec.Cmd, spool string) *server {
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	die(err)
	die(cmd.Start())
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, after, ok := strings.Cut(sc.Text(), "serving on "); ok {
			addr := strings.Fields(after)[0]
			go func() {
				for sc.Scan() {
				}
			}()
			waitReachable(addr)
			return &server{cmd: cmd, addr: addr, spool: spool}
		}
	}
	fatalf("%s exited before announcing its address", cmd.Path)
	return nil
}

func waitReachable(addr string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("server on %s never became reachable", addr)
}

func serverByURL(workers []*server, url string) *server {
	for _, w := range workers {
		if "http://"+w.addr == url {
			return w
		}
	}
	fatalf("no worker behind %s", url)
	return nil
}

// --- fleet API helpers ---

type submission struct {
	id     string
	worker string
}

func submit(addr string, spec serve.JobSpec) submission {
	var buf bytes.Buffer
	die(json.NewEncoder(&buf).Encode(spec))
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", &buf)
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		fatalf("submit (seed %d): HTTP %d: %s", spec.Seed, resp.StatusCode, body)
	}
	var st serve.Status
	die(json.NewDecoder(resp.Body).Decode(&st))
	sub := submission{id: st.ID, worker: resp.Header.Get("X-Carbon-Worker")}
	fmt.Printf("submitted %s (seed %d) -> %s\n", sub.id, spec.Seed, sub.worker)
	return sub
}

func getStatus(addr, id string) (serve.Status, error) {
	var st serve.Status
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %s: HTTP %d", id, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func waitGens(addr, id string, n int) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		if st.State == serve.StateDone {
			fatalf("job %s finished before generation %d — budget too small to interrupt", id, n)
		}
		if st.Gens >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	fatalf("job %s never reached generation %d", id, n)
}

func waitDone(addr, id string) serve.Status {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		switch st.State {
		case serve.StateDone:
			return st
		case serve.StateFailed, serve.StateCanceled, serve.StateDead:
			fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("job %s never finished", id)
	return serve.Status{}
}

func result(addr, id string) *serve.ResultRecord {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id + "/result")
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("result %s: HTTP %d", id, resp.StatusCode)
	}
	var rec serve.ResultRecord
	die(json.NewDecoder(resp.Body).Decode(&rec))
	return &rec
}

type fleetHealth struct {
	OK        bool `json:"ok"`
	Healthy   int  `json:"healthy"`
	Failovers int  `json:"failovers"`
}

func waitHealth(addr, what string, ok func(fleetHealth) bool) {
	deadline := time.Now().Add(30 * time.Second)
	var h fleetHealth
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err == nil && ok(h) {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	fatalf("router never reached the %s state (last: %+v)", what, h)
}

func waitFile(path, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("%s never appeared at %s", what, path)
}

func compare(label string, rec *serve.ResultRecord, want *core.Result) {
	if rec.Gens != want.Gens || rec.ULEvals != want.ULEvals || rec.LLEvals != want.LLEvals {
		fatalf("%s: budget trace diverged: got %d gens %d/%d, want %d gens %d/%d",
			label, rec.Gens, rec.ULEvals, rec.LLEvals, want.Gens, want.ULEvals, want.LLEvals)
	}
	if rec.BestRevenue != want.Best.Revenue || rec.BestGapPct != want.Best.GapPct ||
		rec.BestTree != want.Best.TreeStr || !reflect.DeepEqual(rec.BestPrice, want.Best.Price) {
		fatalf("%s: best pairing diverged", label)
	}
}

func step(s string) { fmt.Println("==> " + s) }

func die(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obs-smoke FAIL: "+format+"\n", args...)
	os.Exit(1)
}
