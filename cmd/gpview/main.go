// Command gpview inspects evolved heuristics: it parses an S-expression
// over the paper's Table I primitive set (or the knapsack/policy sets),
// reports size and depth, algebraically simplifies it, and optionally
// evaluates it against an environment vector or benchmarks it on a
// generated instance.
//
// Usage:
//
//	gpview '(% (* q d) c)'
//	gpview -set knapsack '(% p (* w d))'
//	gpview -env 2,3,5,7,11 '(+ c (* q d))'
//	gpview -apply -n 100 -m 10 '(% (* q d) c)'   # gap on a class instance
//	gpview -trace run.jsonl                      # champion ancestry from a trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"carbon/internal/covering"
	"carbon/internal/gp"
	"carbon/internal/knapsack"
	"carbon/internal/multilevel"
	"carbon/internal/orlib"
	"carbon/internal/tracestat"
)

func main() {
	var (
		setName  = flag.String("set", "covering", "primitive set: covering | knapsack | policy")
		envCSV   = flag.String("env", "", "comma-separated environment to evaluate against")
		apply    = flag.Bool("apply", false, "apply as a greedy heuristic to a generated instance")
		n        = flag.Int("n", 100, "instance bundles (with -apply)")
		m        = flag.Int("m", 5, "instance constraints (with -apply)")
		idx      = flag.Int("instance", 0, "instance index (with -apply)")
		tracePth = flag.String("trace", "", "show the champion's ancestry from this trace file instead of parsing an expression")
		runKey   = flag.String("run", "", "restrict -trace to one run ('label#island')")
	)
	flag.Parse()

	var set *gp.Set
	switch *setName {
	case "covering":
		set = covering.TableISet()
	case "knapsack":
		set = knapsack.Set()
	case "policy":
		set = multilevel.PolicySet()
	default:
		fmt.Fprintf(os.Stderr, "gpview: unknown set %q\n", *setName)
		os.Exit(2)
	}

	if *tracePth != "" {
		if err := showAncestry(set, *setName, *tracePth, *runKey); err != nil {
			fmt.Fprintln(os.Stderr, "gpview:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gpview [flags] '<s-expression>'  |  gpview -trace run.jsonl")
		flag.Usage()
		os.Exit(2)
	}
	src := flag.Arg(0)

	tree, err := gp.Parse(set, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpview:", err)
		os.Exit(1)
	}
	fmt.Printf("expression: %s\n", tree.String(set))
	fmt.Printf("size: %d nodes, depth: %d, constants: %d\n",
		tree.Size(), tree.Depth(set), tree.ConstCount())
	simp := gp.Simplify(set, tree)
	if !simp.Equal(tree) {
		fmt.Printf("simplified: %s (size %d)\n", simp.String(set), simp.Size())
	} else {
		fmt.Println("simplified: (already minimal)")
	}
	fmt.Printf("terminals: %s\n", strings.Join(set.Terms, ", "))

	if *envCSV != "" {
		parts := strings.Split(*envCSV, ",")
		if len(parts) != len(set.Terms) {
			fmt.Fprintf(os.Stderr, "gpview: env needs %d values (%s)\n",
				len(set.Terms), strings.Join(set.Terms, ","))
			os.Exit(1)
		}
		env := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gpview:", err)
				os.Exit(1)
			}
			env[i] = v
		}
		fmt.Printf("value at env %v: %g\n", env, tree.Eval(set, env))
	}

	if *apply {
		if *setName != "covering" {
			fmt.Fprintln(os.Stderr, "gpview: -apply supports the covering set only")
			os.Exit(1)
		}
		in, err := orlib.GenerateCovering(orlib.Class{N: *n, M: *m}, *idx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpview:", err)
			os.Exit(1)
		}
		rx, err := in.Relax()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpview:", err)
			os.Exit(1)
		}
		ts := covering.NewTreeScorer(set, in, rx)
		res := ts.ApplyHeuristic(tree, true)
		if !res.Feasible {
			fmt.Println("heuristic result: INFEASIBLE")
			os.Exit(1)
		}
		fmt.Printf("applied to n=%d m=%d instance %d: cost %.0f, LP bound %.2f, gap %.3f%%\n",
			*n, *m, *idx, res.Cost, rx.LB, covering.Gap(res.Cost, rx.LB))
	}
}

// showAncestry prints each run's champion provenance chain from a trace
// file, parsing and simplifying every recorded expression with the
// chosen primitive set so the lineage reads as heuristics, not IDs.
func showAncestry(set *gp.Set, setName, path, runKey string) error {
	f, err := tracestat.LoadFile(path)
	if err != nil {
		return err
	}
	runs := f.Runs
	if runKey != "" {
		r := f.Run(runKey)
		if r == nil {
			return fmt.Errorf("no run %q in %s", runKey, path)
		}
		runs = []*tracestat.Run{r}
	}
	if len(runs) == 0 {
		return fmt.Errorf("%s holds no runs", path)
	}
	for _, r := range runs {
		fmt.Printf("== %s ==\n", r.Key())
		if r.Done == nil || len(r.Done.Ancestry) == 0 {
			fmt.Println("(no ancestry — v1 trace, unfinished run, or lineage tracking off)")
			continue
		}
		for i, rec := range r.Done.Ancestry {
			role := "ancestor"
			if i == 0 {
				role = "champion"
			}
			fmt.Printf("%s #%d (gen %d, via %s", role, rec.ID, rec.Gen, rec.Op)
			if len(rec.Parents) > 0 {
				fmt.Printf(" of %v", rec.Parents)
			}
			fmt.Print(")")
			if rec.Fitness != 0 {
				fmt.Printf(" gap %.4f%%", rec.Fitness)
			}
			fmt.Println()
			if rec.Expr == "" {
				continue
			}
			tree, perr := gp.Parse(set, rec.Expr)
			if perr != nil {
				fmt.Printf("  expr: %s (unparseable with -set %s: %v)\n", rec.Expr, setName, perr)
				continue
			}
			fmt.Printf("  expr: %s\n", tree.String(set))
			if simp := gp.Simplify(set, tree); !simp.Equal(tree) {
				fmt.Printf("  simplified: %s\n", simp.String(set))
			}
		}
	}
	return nil
}
