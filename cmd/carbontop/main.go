// Command carbontop is the fleet operator's single pane of glass: a
// terminal view of a carbonfleet router (or a single carbond) showing
// fleet health, per-worker queue depth, per-job generation progress
// with a %-gap trend sparkline, and the SLO/dynamics alerts currently
// firing — all pulled from the observability endpoints the router
// federates, so one screen covers N workers.
//
// Usage:
//
//	carbontop -addr http://127.0.0.1:8322 [-refresh 2s] [-once] [-jobs 12]
//
// -once renders a single frame without ANSI control codes and exits —
// the scriptable mode smoke gates and snapshots use. The live mode
// redraws every -refresh using the alternate-screen-free home+clear
// sequence, so scrollback survives.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"carbon/internal/cluster"
	"carbon/internal/serve"
	"carbon/internal/slo"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8322", "carbonfleet (or carbond) base URL")
		refresh = flag.Duration("refresh", 2*time.Second, "redraw cadence in live mode")
		once    = flag.Bool("once", false, "render one plain frame and exit (for scripts)")
		maxJobs = flag.Int("jobs", 12, "job rows shown (most recent first)")
	)
	flag.Parse()

	v := newView(strings.TrimRight(*addr, "/"), *maxJobs)
	if *once {
		v.poll()
		// A dead router means there is nothing to show: an empty frame
		// on stdout would read as "healthy fleet, zero jobs" to a
		// script. Fail with the error alone. Partial poll errors still
		// render whatever did arrive (with the error in the frame and a
		// non-zero exit).
		if v.downErr != nil {
			fmt.Fprintln(os.Stderr, "carbontop: router unreachable:", v.downErr)
			os.Exit(1)
		}
		fmt.Print(v.render())
		if v.pollErr != nil {
			fmt.Fprintln(os.Stderr, "carbontop:", v.pollErr)
			os.Exit(1)
		}
		return
	}
	for {
		v.poll()
		// Home + clear-to-end beats full clears: no flicker, and the
		// scrollback buffer stays usable.
		fmt.Print("\x1b[H\x1b[2J" + v.render())
		time.Sleep(*refresh)
	}
}

// view holds the poll results plus the per-job gap history that feeds
// the trend sparklines — client-side state, so the router stays
// stateless about who is watching.
type view struct {
	addr    string
	maxJobs int
	client  *http.Client

	pollErr error
	downErr error // healthz poll failure — the router itself is gone
	health  cluster.FleetHealth
	workers []cluster.WorkerStatus
	jobs    []serve.Status // fleet-ID statuses, newest first
	alerts  []slo.Alert

	gapHist map[string][]float64 // fleet ID → recent best-gap samples
}

func newView(addr string, maxJobs int) *view {
	return &view{
		addr:    addr,
		maxJobs: maxJobs,
		client:  &http.Client{Timeout: 5 * time.Second},
		gapHist: map[string][]float64{},
	}
}

func (v *view) getJSON(path string, out any) error {
	resp, err := v.client.Get(v.addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.Unmarshal(b, out)
}

func (v *view) poll() {
	v.downErr = v.getJSON("/v1/healthz", &v.health)
	v.pollErr = v.downErr
	if err := v.getJSON("/v1/workers", &v.workers); err != nil && v.pollErr == nil {
		v.pollErr = err
	}
	_ = v.getJSON("/v1/fleet/alerts", &v.alerts) // absent on a bare carbond

	// The route table gives fleet IDs; each status poll carries Latest
	// GenStats — the gap-trend sample.
	var routes []struct {
		FleetID string `json:"fleet_id"`
	}
	v.jobs = v.jobs[:0]
	if err := v.getJSON("/v1/jobs", &routes); err == nil {
		sort.Slice(routes, func(a, b int) bool { return routes[a].FleetID > routes[b].FleetID })
		if len(routes) > v.maxJobs {
			routes = routes[:v.maxJobs]
		}
		for _, rt := range routes {
			var st serve.Status
			if err := v.getJSON("/v1/jobs/"+rt.FleetID, &st); err != nil {
				continue
			}
			v.jobs = append(v.jobs, st)
			if st.Latest != nil {
				h := append(v.gapHist[st.ID], st.Latest.BestGap)
				if len(h) > sparkWidth {
					h = h[len(h)-sparkWidth:]
				}
				v.gapHist[st.ID] = h
			}
		}
	}
}

const sparkWidth = 16

var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// sparkline renders xs into a fixed-width trend strip, scaled to the
// window's own min..max (shape over magnitude — the number next to it
// carries the scale).
func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return strings.Repeat(" ", sparkWidth)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(sparkRamp)-1))
		}
		b.WriteRune(sparkRamp[i])
	}
	for i := len(xs); i < sparkWidth; i++ {
		b.WriteByte(' ')
	}
	return b.String()
}

func (v *view) render() string {
	var b strings.Builder
	now := time.Now().Format("15:04:05")
	ok := "OK"
	if !v.health.OK {
		ok = "DEGRADED"
	}
	fmt.Fprintf(&b, "carbontop · %s · %s\n", v.addr, now)
	if v.pollErr != nil {
		fmt.Fprintf(&b, "  ! poll error: %v\n", v.pollErr)
	}
	fmt.Fprintf(&b, "fleet %s · policy %s · %d/%d workers healthy · %d routes (%d unfinished) · %d failovers\n\n",
		ok, v.health.Policy, v.health.Healthy, v.health.Workers,
		v.health.Routes, v.health.Unfinished, v.health.Failovers)

	fmt.Fprintf(&b, "%-28s %-8s %7s %7s %7s %7s %9s\n",
		"WORKER", "STATE", "QUEUE", "RUN", "DONE", "DEAD", "UPTIME")
	for _, w := range v.workers {
		state := "healthy"
		switch {
		case w.Dead:
			state = "DEAD"
		case !w.Healthy:
			state = fmt.Sprintf("miss %d", w.Misses)
		}
		fmt.Fprintf(&b, "%-28s %-8s %3d/%-3d %7d %7d %7d %8.0fs\n",
			trim(w.URL, 28), state,
			w.Health.QueueDepth, w.Health.QueueCap, w.Health.Running,
			w.Health.Done, w.Health.Dead, w.Health.UptimeSec)
	}

	fmt.Fprintf(&b, "\n%-9s %-9s %6s %4s %9s  %-*s %s\n",
		"JOB", "STATE", "GENS", "ATT", "GAP%", sparkWidth, "TREND", "BEST")
	for _, st := range v.jobs {
		gap, best := "", ""
		if st.Latest != nil {
			gap = fmt.Sprintf("%.4f", st.Latest.BestGap)
			best = fmt.Sprintf("%.4f", st.Latest.BestRevenue)
		}
		fmt.Fprintf(&b, "%-9s %-9s %6d %4d %9s  %s %s\n",
			st.ID, st.State, st.Gens, st.Attempts, gap,
			sparkline(v.gapHist[st.ID]), best)
	}

	b.WriteString("\nALERTS\n")
	if len(v.alerts) == 0 {
		b.WriteString("  (none firing)\n")
	}
	for _, a := range v.alerts {
		age := ""
		if !a.Since.IsZero() {
			age = time.Since(a.Since).Round(time.Second).String()
		}
		fmt.Fprintf(&b, "  %-8s %-24s %-28s value %.4g · for %s\n",
			strings.ToUpper(string(a.State)), a.Rule, a.Metric, a.Value, age)
	}
	return b.String()
}

func trim(s string, n int) string {
	s = strings.TrimPrefix(s, "http://")
	if len(s) > n {
		return s[:n]
	}
	return s
}
