// Command carbond serves CARBON optimizations as crash-safe jobs over
// HTTP. Jobs are spooled to disk, checkpointed periodically while they
// run, and resumed automatically after a crash or restart; a graceful
// shutdown (SIGTERM/SIGINT) checkpoints every running job before exit.
//
// Usage:
//
//	carbond [-addr :8321] [-spool spool] [-jobs 1] [-queue 16]
//	        [-checkpoint-every 25] [-metrics-addr :8080]
//	        [-max-attempts 3] [-retry-backoff 250ms] [-attempt-timeout 0]
//	        [-fault ""] [-fault-seed 1] [-spans=true]
//
// With -spans (the default) every job writes a <id>.spans.jsonl trace
// next to its spool entry — submit-to-solve latency attribution that
// survives crashes and stitches across restarts. A traceparent request
// header on POST /v1/jobs joins the job to the caller's trace; analyze
// the files with `carbonstat -spans`. Span durations also feed
// span_*_ms histograms on /metrics/prometheus.
//
// A job that fails retryably (an evaluation fault, a spool I/O error,
// an attempt timeout) is retried from its last clean checkpoint with
// exponential backoff, up to -max-attempts; an exhausted job is
// dead-lettered (state "dead", attempts preserved across restarts).
// -fault arms deterministic fault injection for chaos drills, e.g.
// "lp.solve:every=1,after=30,limit=8;spool.write:prob=0.1" — never set
// it in production.
//
// API (see README "Serving" for examples):
//
//	POST   /v1/jobs             submit a job spec
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        status + live per-generation stats
//	GET    /v1/jobs/{id}/result final result (409 until finished)
//	DELETE /v1/jobs/{id}        cancel or delete
//	GET    /metrics             aggregated engine metrics (also /debug/*)
//	GET    /metrics/prometheus  the same, plus per-job series, in text exposition format
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"path/filepath"

	"carbon/internal/cluster/netmigrate"
	"carbon/internal/fault"
	"carbon/internal/serve"
	"carbon/internal/span"
	"carbon/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", ":8321", "HTTP listen address for the job API")
		spool    = flag.String("spool", "spool", "spool directory for specs, checkpoints and results")
		jobs     = flag.Int("jobs", 1, "jobs run concurrently (each job's eval parallelism is per-spec)")
		queue    = flag.Int("queue", 16, "queued jobs beyond which submissions are rejected (429)")
		ckEvery  = flag.Int("checkpoint-every", 25, "checkpoint running jobs every N generations")
		metricsA = flag.String("metrics-addr", "", "also serve the telemetry mux on this separate address")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "max time to checkpoint running jobs on shutdown")
		attempts = flag.Int("max-attempts", 3, "executions per job before it is dead-lettered")
		backoff  = flag.Duration("retry-backoff", 250*time.Millisecond, "base delay between attempts (doubles per retry, jittered)")
		attemptT = flag.Duration("attempt-timeout", 0, "wall-clock bound per attempt (0 = none; retryable, unlike a spec timeout)")
		faultS   = flag.String("fault", "", "fault-injection spec for chaos drills, e.g. \"lp.solve:every=1,after=30,limit=8\"")
		faultSd  = flag.Uint64("fault-seed", 1, "seed for probabilistic fault decisions")
		spans    = flag.Bool("spans", true, "write per-job span traces (<id>.spans.jsonl) next to the spool")
		exact    = flag.Bool("exact", false, "strip surrogate knobs from every submitted spec (all jobs run the exact-LP golden path)")
		fleet    = flag.Bool("fleet", true, "serve the /v1/fleet/ peer endpoints (networked island model)")
	)
	flag.Parse()

	inj, err := fault.Parse(*faultS, *faultSd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbond:", err)
		os.Exit(1)
	}
	if inj != nil {
		fmt.Fprintf(os.Stderr, "carbond: FAULT INJECTION ARMED (seed %d): %s\n",
			*faultSd, strings.Join(inj.Names(), ", "))
	}

	reg := telemetry.NewRegistry()
	mgr, err := serve.NewManager(serve.Options{
		Workers:         *jobs,
		QueueDepth:      *queue,
		SpoolDir:        *spool,
		CheckpointEvery: *ckEvery,
		Metrics:         reg,
		MaxAttempts:     *attempts,
		RetryBackoff:    *backoff,
		AttemptTimeout:  *attemptT,
		RetrySeed:       *faultSd,
		Fault:           inj,
		Spans:           *spans,
		ForceExact:      *exact,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbond:", err)
		os.Exit(1)
	}

	// One mux serves both the job API and the telemetry endpoints, so a
	// single port gives /v1/*, /metrics, /metrics/prometheus and
	// /debug/*. The Prometheus endpoint renders the aggregate engine
	// registry plus one job="<id>"-labeled series set per job, re-read on
	// every scrape so later submissions appear without restarts.
	// -metrics-addr additionally exposes the telemetry mux on its own
	// listener (for firewalling the API separately from introspection).
	reg.PublishExpvar("carbond")
	telemetryMux := telemetry.DynamicHandler(
		func() map[string]*telemetry.Registry { return map[string]*telemetry.Registry{"carbond": reg} },
		mgr.MetricsTargets,
	)
	mux := http.NewServeMux()
	// The fleet peer endpoints host shards of distributed island runs
	// (submitted through a carbonfleet router). Registered before the
	// /v1/ catch-all: more specific patterns win, so /v1/fleet/* routes
	// to the peer and everything else under /v1/ to the job API. With
	// -spans the peer's shard spans land in <spool>/fleet.spans.jsonl,
	// joining the run's cross-node trace.
	if *fleet {
		var tracer *span.Tracer
		if *spans {
			exp := span.NewFileExporter(filepath.Join(*spool, "fleet.spans.jsonl"))
			defer exp.Close()
			tracer = span.New(exp)
		}
		peer := netmigrate.NewPeer(netmigrate.PeerOptions{Tracer: tracer})
		mux.Handle("/v1/fleet/", peer.Handler())
	}
	mux.Handle("/v1/", serve.APIHandler(mgr))
	mux.Handle("/", telemetryMux)
	if *metricsA != "" {
		mln, err := net.Listen("tcp", *metricsA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "carbond:", err)
			os.Exit(1)
		}
		msrv := &http.Server{Handler: telemetryMux}
		go func() { _ = msrv.Serve(mln) }()
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "carbond: metrics on http://%s/metrics\n", mln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "carbond:", err)
		os.Exit(1)
	}
	// The bound address goes to stdout so wrappers (the serve-smoke
	// driver, scripts using -addr :0) can discover the port.
	fmt.Printf("carbond: serving on %s (spool %s)\n", ln.Addr(), *spool)

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "carbond:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stopSignals()

	// Graceful drain: stop accepting HTTP, checkpoint and park every
	// running job, leave the spool ready for the next start.
	fmt.Fprintln(os.Stderr, "carbond: draining (checkpointing running jobs)")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	if err := mgr.Close(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "carbond:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "carbond: drained")
}
