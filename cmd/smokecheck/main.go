// Command smokecheck verifies that no stray CARBON daemons or smoke
// binaries are still running before a benchmark starts. On a shared (or
// single-core) box, a forgotten carbond or a smoke test's leaked
// carbonfleet steals cycles from the benchmark process and quietly
// inflates every ns/op it reports; `make bench` runs this first and
// refuses to proceed until the stragglers are gone.
//
// Usage:
//
//	smokecheck            exit 0 when clean, exit 1 listing offenders
//
// Detection walks /proc/<pid>/cmdline, so it needs a Linux-style procfs;
// elsewhere the check reports "skipped" and passes — better to run an
// unguarded benchmark than to fail it on a platform we cannot inspect.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// strays are the long-running binaries this repo can leave behind: the
// daemons themselves plus every smoke driver that spawns them.
var strays = []string{
	"carbond", "carbonfleet",
	"servesmoke", "chaossmoke", "fleetsmoke", "obsmoke", "tracesmoke",
}

func main() {
	if _, err := os.Stat("/proc/self/cmdline"); err != nil {
		fmt.Println("smokecheck: no procfs on this platform, check skipped")
		return
	}
	offenders, err := scan(os.Getpid())
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokecheck:", err)
		os.Exit(1)
	}
	if len(offenders) == 0 {
		fmt.Println("smokecheck: no stray daemons")
		return
	}
	fmt.Fprintln(os.Stderr, "smokecheck: stray processes would skew the benchmark; kill them first:")
	for _, o := range offenders {
		fmt.Fprintf(os.Stderr, "  %s\n", o)
	}
	os.Exit(1)
}

// scan lists running processes whose argv[0] basename matches a known
// stray, excluding self (and go run's wrapper never matches: argv[0] is
// the compiled tool path, checked by basename).
func scan(self int) ([]string, error) {
	entries, err := os.ReadDir("/proc")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil || pid == self {
			continue
		}
		// Processes may exit mid-scan; unreadable entries are not ours
		// to report.
		raw, err := os.ReadFile(filepath.Join("/proc", e.Name(), "cmdline"))
		if err != nil || len(raw) == 0 {
			continue
		}
		argv0 := strings.SplitN(string(raw), "\x00", 2)[0]
		name := filepath.Base(argv0)
		for _, s := range strays {
			if name == s {
				out = append(out, fmt.Sprintf("pid %d: %s", pid, argv0))
				break
			}
		}
	}
	return out, nil
}
