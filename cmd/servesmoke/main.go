// Command servesmoke is the end-to-end crash-recovery gate for carbond
// (run via `make serve-smoke`). It drives the real binary through the
// two interruption modes a production server meets:
//
//  1. SIGKILL mid-run — the process dies with no warning; on restart the
//     job must resume from its last spooled checkpoint and finish with
//     exactly the result of an uninterrupted run (computed in-process as
//     the reference).
//  2. SIGTERM mid-run — graceful drain; the server must checkpoint the
//     running job, exit 0, and the next start must resume and finish,
//     again bit-identically.
//
// Any divergence, hang or lost job exits non-zero.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"time"

	"carbon/internal/core"
	"carbon/internal/serve"
)

// smokeSpec is fully explicit (no server-side defaulting) so the
// in-process reference below is guaranteed to run the same config:
// 100 generations on the 60x5 class, a couple of seconds of work —
// enough room to interrupt twice.
func smokeSpec(seed uint64) serve.JobSpec {
	return serve.JobSpec{
		N: 60, M: 5, Instance: 3, Customers: 1,
		Seed: seed, Pop: 16, ULEvals: 1600, LLEvals: 4800,
		PreySample: 2, Workers: 1,
	}
}

func main() {
	carbond := flag.String("carbond", "", "prebuilt carbond binary (default: go build it)")
	flag.Parse()

	work, err := os.MkdirTemp("", "carbon-smoke-*")
	die(err)
	defer os.RemoveAll(work)
	spool := filepath.Join(work, "spool")

	bin := *carbond
	if bin == "" {
		bin = filepath.Join(work, "carbond")
		step("building carbond")
		out, err := exec.Command("go", "build", "-o", bin, "carbon/cmd/carbond").CombinedOutput()
		if err != nil {
			fatalf("go build carbond: %v\n%s", err, out)
		}
	}

	step("computing uninterrupted reference runs (in-process)")
	refA := reference(smokeSpec(7))
	refB := reference(smokeSpec(8))

	// --- Scenario 1: SIGKILL mid-run, restart, resume ---
	step("scenario 1: SIGKILL mid-run")
	srv := start(bin, spool)
	idA := submit(srv.addr, smokeSpec(7))
	waitGens(srv.addr, idA, 4)
	step("SIGKILL at >=4 generations")
	die(srv.cmd.Process.Kill())
	_ = srv.cmd.Wait() // non-zero exit expected: it was murdered
	mustExist(filepath.Join(spool, idA+".job.json"))
	mustExist(filepath.Join(spool, idA+".ckpt.json"))

	step("restarting after crash")
	srv = start(bin, spool)
	stA := waitDone(srv.addr, idA)
	if !stA.Resumed {
		fatalf("job %s finished without resuming from the checkpoint", idA)
	}
	compare("crash-resumed", result(srv.addr, idA), refA)
	fmt.Println("scenario 1 OK: resumed after SIGKILL, result bit-identical")

	// --- Scenario 2: graceful SIGTERM drain, restart, resume ---
	step("scenario 2: SIGTERM drain mid-run")
	idB := submit(srv.addr, smokeSpec(8))
	waitGens(srv.addr, idB, 2)
	die(srv.cmd.Process.Signal(syscall.SIGTERM))
	if err := srv.cmd.Wait(); err != nil {
		fatalf("drain exit: %v (want clean exit 0)", err)
	}
	mustExist(filepath.Join(spool, idB+".job.json"))
	mustExist(filepath.Join(spool, idB+".ckpt.json"))

	step("restarting after drain")
	srv = start(bin, spool)
	stB := waitDone(srv.addr, idB)
	if !stB.Resumed {
		fatalf("drained job %s did not resume from its checkpoint", idB)
	}
	compare("drain-resumed", result(srv.addr, idB), refB)
	fmt.Println("scenario 2 OK: drained on SIGTERM, resumed, result bit-identical")

	// Idle shutdown must also be clean.
	die(srv.cmd.Process.Signal(syscall.SIGTERM))
	if err := srv.cmd.Wait(); err != nil {
		fatalf("final shutdown: %v", err)
	}
	fmt.Println("serve-smoke PASS")
}

// reference runs the spec uninterrupted in this process.
func reference(spec serve.JobSpec) *core.Result {
	mk, err := spec.Market()
	die(err)
	res, err := core.Run(mk, spec.Config())
	die(err)
	return res
}

type server struct {
	cmd  *exec.Cmd
	addr string
}

// start launches carbond on an ephemeral port and parses the bound
// address from its stdout banner.
func start(bin, spool string) *server {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-spool", spool, "-jobs", "1", "-checkpoint-every", "1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	die(err)
	die(cmd.Start())
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, after, ok := strings.Cut(line, "serving on "); ok {
			addr := strings.Fields(after)[0]
			go func() { // drain the rest so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			waitHealthy(addr)
			return &server{cmd: cmd, addr: addr}
		}
	}
	fatalf("carbond exited before announcing its address")
	return nil
}

func waitHealthy(addr string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/jobs")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("carbond on %s never became healthy", addr)
}

func submit(addr string, spec serve.JobSpec) string {
	var buf bytes.Buffer
	die(json.NewEncoder(&buf).Encode(spec))
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", &buf)
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var st serve.Status
	die(json.NewDecoder(resp.Body).Decode(&st))
	fmt.Printf("submitted %s (seed %d)\n", st.ID, spec.Seed)
	return st.ID
}

func getStatus(addr, id string) (serve.Status, error) {
	var st serve.Status
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitGens blocks until the job has completed at least n generations,
// failing loudly if it finishes first (the smoke budgets are sized so
// that cannot happen on any plausible machine).
func waitGens(addr, id string, n int) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		if st.State == serve.StateDone {
			fatalf("job %s finished before reaching %d generations — budgets too small to interrupt", id, n)
		}
		if st.Gens >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	fatalf("job %s never reached generation %d", id, n)
}

func waitDone(addr, id string) serve.Status {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := getStatus(addr, id)
		die(err)
		switch st.State {
		case serve.StateDone:
			return st
		case serve.StateFailed, serve.StateCanceled:
			fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatalf("job %s never finished", id)
	return serve.Status{}
}

func result(addr, id string) *serve.ResultRecord {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id + "/result")
	die(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("result: HTTP %d", resp.StatusCode)
	}
	var rec serve.ResultRecord
	die(json.NewDecoder(resp.Body).Decode(&rec))
	return &rec
}

// compare asserts the served result is bit-identical to the reference.
func compare(label string, rec *serve.ResultRecord, want *core.Result) {
	if rec.Gens != want.Gens || rec.ULEvals != want.ULEvals || rec.LLEvals != want.LLEvals {
		fatalf("%s: budget trace diverged: got %d gens %d/%d, want %d gens %d/%d",
			label, rec.Gens, rec.ULEvals, rec.LLEvals, want.Gens, want.ULEvals, want.LLEvals)
	}
	if rec.BestRevenue != want.Best.Revenue || rec.BestGapPct != want.Best.GapPct ||
		rec.BestTree != want.Best.TreeStr {
		fatalf("%s: best pairing diverged:\n got  (%v, %q, %v)\n want (%v, %q, %v)",
			label, rec.BestRevenue, rec.BestTree, rec.BestGapPct,
			want.Best.Revenue, want.Best.TreeStr, want.Best.GapPct)
	}
	if !reflect.DeepEqual(rec.BestPrice, want.Best.Price) {
		fatalf("%s: best price vector diverged", label)
	}
	if !reflect.DeepEqual(rec.ULCurveX, want.ULCurve.X) || !reflect.DeepEqual(rec.ULCurveY, want.ULCurve.Y) ||
		!reflect.DeepEqual(rec.GapCurveX, want.GapCurve.X) || !reflect.DeepEqual(rec.GapCurveY, want.GapCurve.Y) {
		fatalf("%s: convergence curves diverged", label)
	}
	fmt.Printf("%s: %d gens, best F %.4f, gap %.4f%% — exact match\n",
		label, rec.Gens, rec.BestRevenue, rec.BestGapPct)
}

func mustExist(path string) {
	if _, err := os.Stat(path); err != nil {
		fatalf("expected spool file: %v", err)
	}
}

func step(msg string) { fmt.Println("== " + msg) }

func die(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}
