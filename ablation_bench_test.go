// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports the actually-achieved %-gap ("gap%") of a CARBON variant on
// the n=250, m=10 class, so the variants are directly comparable:
//
//	Baseline        — the paper's configuration (Eq. 1 gap fitness,
//	                  Table I terminals, redundancy elimination on)
//	CostFitness     — predators minimize raw follower cost (COBRA-style)
//	BlindTerminals  — Table I without the LP terminals d and x̄
//	NoElimination   — greedy keeps redundant bundles
//	PreySample/N    — predators scored against N prey per generation
package carbon_test

import (
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/core"
	"carbon/internal/covering"
	"carbon/internal/orlib"
)

var ablationClass = orlib.Class{N: 250, M: 10}

func ablationConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize, cfg.LLPopSize = 16, 16
	cfg.ULArchiveSize, cfg.LLArchiveSize = 16, 16
	cfg.ULEvalBudget, cfg.LLEvalBudget = 480, 960
	cfg.PreySample = 2
	cfg.Workers = 1
	return cfg
}

func runAblation(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	mk, err := bcpop.NewMarketFromClass(ablationClass, 0)
	if err != nil {
		b.Fatal(err)
	}
	total := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(uint64(i + 1))
		mutate(&cfg)
		res, err := core.Run(mk, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Best.GapPct
	}
	b.ReportMetric(total/float64(b.N), "gap%")
}

func BenchmarkAblationBaseline(b *testing.B) {
	runAblation(b, func(*core.Config) {})
}

func BenchmarkAblationCostFitness(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.CostFitness = true })
}

func BenchmarkAblationBlindTerminals(b *testing.B) {
	runAblation(b, func(c *core.Config) {
		set := covering.TableISet()
		set.Terms = set.Terms[:3] // drop d and x̄ (env slots 3,4 unused)
		c.PrimitiveSet = set
	})
}

func BenchmarkAblationNoElimination(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.NoElimination = true })
}

func BenchmarkAblationDEVariation(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.ULVariation = "de" })
}

func BenchmarkAblationPointMutation(b *testing.B) {
	runAblation(b, func(c *core.Config) { c.LLPointMutProb = 0.2 })
}

func BenchmarkAblationPreySample(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		b.Run(string(rune('0'+n)), func(b *testing.B) {
			runAblation(b, func(c *core.Config) { c.PreySample = n })
		})
	}
}

// BenchmarkAblationIslands compares the island-model CARBON against the
// single-population baseline under equal total budgets on the ablation
// class: coarse-grained parallelism with ring migration vs one panmictic
// population.
func BenchmarkAblationIslands(b *testing.B) {
	mk, err := bcpop.NewMarketFromClass(ablationClass, 0)
	if err != nil {
		b.Fatal(err)
	}
	ic := core.DefaultIslandConfig()
	ic.Islands = 4
	total := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(uint64(i + 1))
		cfg.ULEvalBudget *= 4 // same per-island budget as the baseline
		cfg.LLEvalBudget *= 4
		res, err := core.RunIslands(mk, cfg, ic)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Best.GapPct
	}
	b.ReportMetric(total/float64(b.N), "gap%")
}
