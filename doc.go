// Package carbon is a from-scratch Go reproduction of "A Competitive
// Approach for Bi-Level Co-Evolution" (Kieffer, Danoy, Bouvry, Nagih):
// the CARBON competitive co-evolutionary algorithm for bi-level
// optimization, the COBRA baseline, the Bi-level Cloud Pricing
// Optimization Problem, and every substrate they need (a bounded-variable
// simplex LP solver, a GP hyper-heuristics engine, real-coded GA
// operators, covering-problem solvers, and OR-library-style instance
// tooling).
//
// Start with README.md for the tour, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The root-level benchmarks in bench_test.go regenerate each of
// the paper's tables and figures at laptop scale; cmd/blbench runs the
// full protocol.
package carbon
