module carbon

go 1.22
