// Benchmarks regenerating the paper's evaluation artifacts, one per
// table and figure (§V). Each benchmark iteration is a complete
// (scaled-budget) optimization run; alongside ns/op the benchmarks
// report the quantity the corresponding table or figure plots as custom
// metrics:
//
//	BenchmarkTableIII — gap%      (Table III: %-gap to LL optimality)
//	BenchmarkTableIV  — F         (Table IV: UL objective values)
//	BenchmarkFig4     — mono      (Fig 4: CARBON curve monotonicity, →1)
//	BenchmarkFig5     — reversals (Fig 5: COBRA see-saw reversal count)
//
// Budgets are scaled from Table II's 50 000 evaluations so the suite
// finishes on one machine; cmd/blbench -full runs the real protocol.
// The per-table absolute values are therefore looser than the paper's,
// but the comparisons' directions match (see EXPERIMENTS.md).
package carbon_test

import (
	"testing"

	"carbon/internal/bcpop"
	"carbon/internal/cobra"
	"carbon/internal/core"
	"carbon/internal/covering"
	"carbon/internal/gp"
	"carbon/internal/orlib"
	"carbon/internal/stats"
)

// benchBudget returns scaled budgets for a class: larger instances get
// the same evaluation counts (the paper holds budgets constant across
// classes too).
const (
	benchPop     = 12
	benchULEvals = 240
	benchLLEvals = 480
)

func benchMarket(b *testing.B, cl orlib.Class) *bcpop.Market {
	b.Helper()
	mk, err := bcpop.NewMarketFromClass(cl, 0)
	if err != nil {
		b.Fatal(err)
	}
	return mk
}

func carbonBenchConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize, cfg.LLPopSize = benchPop, benchPop
	cfg.ULArchiveSize, cfg.LLArchiveSize = benchPop, benchPop
	cfg.ULEvalBudget, cfg.LLEvalBudget = benchULEvals, benchLLEvals
	cfg.PreySample = 2
	cfg.Workers = 1
	return cfg
}

func cobraBenchConfig(seed uint64) cobra.Config {
	cfg := cobra.DefaultConfig()
	cfg.Seed = seed
	cfg.ULPopSize, cfg.LLPopSize = benchPop, benchPop
	cfg.ULArchiveSize, cfg.LLArchiveSize = benchPop, benchPop
	cfg.ULEvalBudget, cfg.LLEvalBudget = benchULEvals, benchLLEvals
	cfg.CoevPairs = 4
	cfg.ArchiveInject = 2
	cfg.Workers = 1
	return cfg
}

// BenchmarkTableIII regenerates Table III: per class, both algorithms'
// best %-gap to lower-level optimality (reported as the "gap%" metric).
func BenchmarkTableIII(b *testing.B) {
	for _, cl := range orlib.PaperClasses {
		cl := cl
		b.Run("CARBON/"+cl.String(), func(b *testing.B) {
			mk := benchMarket(b, cl)
			total := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(mk, carbonBenchConfig(uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				total += res.Best.GapPct
			}
			b.ReportMetric(total/float64(b.N), "gap%")
		})
		b.Run("COBRA/"+cl.String(), func(b *testing.B) {
			mk := benchMarket(b, cl)
			total := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cobra.Run(mk, cobraBenchConfig(uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				total += res.BestGapPct
			}
			b.ReportMetric(total/float64(b.N), "gap%")
		})
	}
}

// BenchmarkTableIV regenerates Table IV: per class, both algorithms'
// reported upper-level objective (the "F" metric). COBRA's higher F is
// the over-estimation the paper's Eq. 2/3 argument explains.
func BenchmarkTableIV(b *testing.B) {
	for _, cl := range orlib.PaperClasses {
		cl := cl
		b.Run("CARBON/"+cl.String(), func(b *testing.B) {
			mk := benchMarket(b, cl)
			total := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(mk, carbonBenchConfig(uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				total += res.Best.Revenue
			}
			b.ReportMetric(total/float64(b.N), "F")
		})
		b.Run("COBRA/"+cl.String(), func(b *testing.B) {
			mk := benchMarket(b, cl)
			total := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cobra.Run(mk, cobraBenchConfig(uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				total += res.BestRevenue
			}
			b.ReportMetric(total/float64(b.N), "F")
		})
	}
}

// figClass is the class Figures 4 and 5 use in the paper.
var figClass = orlib.Class{N: 500, M: 30}

// BenchmarkFig4 regenerates Fig 4's data: a CARBON run on n=500 m=30
// whose two convergence curves must be smooth. The "mono" metrics are
// the fraction of monotone steps (1.0 = perfectly steady, the paper's
// qualitative claim for CARBON).
func BenchmarkFig4(b *testing.B) {
	mk := benchMarket(b, figClass)
	ulMono, gapMono := 0.0, 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(mk, carbonBenchConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		ulMono += stats.Monotonicity(res.ULCurve.Y, +1)
		gapMono += stats.Monotonicity(res.GapCurve.Y, -1)
	}
	b.ReportMetric(ulMono/float64(b.N), "ulMono")
	b.ReportMetric(gapMono/float64(b.N), "gapMono")
}

// BenchmarkFig5 regenerates Fig 5's data: a COBRA run on the same class.
// The "reversals" metric counts direction changes in the gap curve —
// the see-saw signature the paper attributes to COBRA's alternating
// improvement phases.
func BenchmarkFig5(b *testing.B) {
	mk := benchMarket(b, figClass)
	reversals, gapMono := 0.0, 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cobra.Run(mk, cobraBenchConfig(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		reversals += float64(stats.SeeSaw(res.GapCurve.Y))
		gapMono += stats.Monotonicity(res.GapCurve.Y, -1)
	}
	b.ReportMetric(reversals/float64(b.N), "reversals")
	b.ReportMetric(gapMono/float64(b.N), "gapMono")
}

// BenchmarkPairedEvaluation measures the single hot operation both
// algorithms are built from: one (pricing, heuristic) paired evaluation
// on the figure-class market (warm LP relaxation + tree scoring +
// greedy).
func BenchmarkPairedEvaluation(b *testing.B) {
	mk := benchMarket(b, figClass)
	set := covering.TableISet()
	ev, err := bcpop.NewEvaluator(mk, set)
	if err != nil {
		b.Fatal(err)
	}
	tree := gp.MustParse(set, "(% (* q d) c)")
	price := make([]float64, mk.Leaders())
	bounds := mk.PriceBounds()
	for j := range price {
		price[j] = bounds.Up[j] / 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		price[i%len(price)] = bounds.Up[0] * float64(i%7+1) / 8
		if _, _, err := ev.EvalTree(price, tree); err != nil {
			b.Fatal(err)
		}
	}
}
